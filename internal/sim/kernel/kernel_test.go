package kernel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/interpose"
	"repro/internal/sim/netsim"
	"repro/internal/sim/proc"
	"repro/internal/sim/registry"
	"repro/internal/sim/vfs"
)

// newWorld builds a small UNIX-ish world: root, alice (100), mallory (666),
// standard directories, a protected shadow file, and a world-writable /tmp.
func newWorld(t *testing.T) *Kernel {
	t.Helper()
	k := New()
	k.Users.Add(proc.User{Name: "alice", UID: 100, GID: 100})
	k.Users.Add(proc.User{Name: "mallory", UID: 666, GID: 666})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(k.FS.MkdirAll("/", "/usr/bin", 0o755, 0, 0))
	must(k.FS.MkdirAll("/", "/home/alice", 0o755, 100, 100))
	must(k.FS.WriteFile("/etc/passwd", []byte("root:x:0:0\nalice:x:100:100\n"), 0o644, 0, 0))
	must(k.FS.WriteFile("/etc/shadow", []byte("root:SECRETHASH:0\n"), 0o600, 0, 0))
	if _, err := k.FS.Mkdir("/", "/tmp", 0o777, 0, 0); err != nil {
		t.Fatal(err)
	}
	return k
}

func alice(k *Kernel) *Proc {
	return k.NewProc(proc.NewCred(100, 100), proc.NewEnv("PATH", "/usr/bin", "HOME", "/home/alice"), "/home/alice")
}

func TestOpenReadPermissions(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	// World-readable file opens fine.
	f, err := p.Open("t:open-passwd", "/etc/passwd", ORead, 0)
	if err != nil {
		t.Fatalf("open passwd: %v", err)
	}
	data, err := p.ReadAll("t:read-passwd", f)
	if err != nil || !strings.Contains(string(data), "alice") {
		t.Fatalf("read = %q, %v", data, err)
	}
	if err := p.Close(f); err != nil {
		t.Fatal(err)
	}
	// Protected file is denied.
	if _, err := p.Open("t:open-shadow", "/etc/shadow", ORead, 0); !errors.Is(err, ErrPerm) {
		t.Errorf("open shadow err = %v, want ErrPerm", err)
	}
	// Root reads anything.
	rootP := k.NewProc(proc.NewCred(0, 0), nil, "/")
	if _, err := rootP.Open("t:root-shadow", "/etc/shadow", ORead, 0); err != nil {
		t.Errorf("root open shadow: %v", err)
	}
}

func TestCreateSemantics(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	f, err := p.Create("t:create", "/tmp/job1", 0o666)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := p.Write("t:write", f, []byte("data")); err != nil {
		t.Fatalf("write: %v", err)
	}
	n, err := k.FS.Lookup("/", "/tmp/job1")
	if err != nil {
		t.Fatal(err)
	}
	if n.UID != 100 {
		t.Errorf("created file uid = %d, want 100", n.UID)
	}
	// Umask 022 applied.
	if n.Mode != 0o644 {
		t.Errorf("mode = %o, want 644 after umask", uint16(n.Mode))
	}
	// Cannot create where the parent denies write.
	if _, err := p.Create("t:create-etc", "/etc/evil", 0o644); !errors.Is(err, ErrPerm) {
		t.Errorf("create in /etc err = %v, want ErrPerm", err)
	}
	// Exclusive create collides.
	if _, err := p.Open("t:excl", "/tmp/job1", OWrite|OCreate|OExcl, 0o644); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("excl err = %v, want ErrExist", err)
	}
}

func TestCreateThroughSymlinkTruncatesTarget(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	// Mallory plants a symlink in /tmp pointing at /etc/passwd.
	if _, err := k.FS.Symlink("/", "/etc/passwd", "/tmp/job1", 666, 666); err != nil {
		t.Fatal(err)
	}
	// A root process (like set-UID lpr) creats /tmp/job1 → truncates passwd.
	rootP := k.NewProc(proc.NewCred(0, 0), nil, "/")
	f, err := rootP.Create("lpr:create", "/tmp/job1", 0o660)
	if err != nil {
		t.Fatalf("create through symlink: %v", err)
	}
	if f.Path != "/etc/passwd" {
		t.Errorf("resolved path = %q, want /etc/passwd", f.Path)
	}
	if _, err := rootP.Write("lpr:write", f, []byte("attacker::0:0::/:/bin/sh\n")); err != nil {
		t.Fatal(err)
	}
	got, err := k.FS.ReadFile("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "attacker") {
		t.Error("symlink attack did not reach the target — the lpr scenario depends on this")
	}
	// The trace records the RESOLVED path so the oracle can see it.
	ev := k.Bus.EventAt("lpr:create#0")
	if ev == nil || ev.ResolvedPath != "/etc/passwd" {
		t.Errorf("trace resolved path = %+v", ev)
	}
}

func TestWriteRequiresWriteMode(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	f, err := p.Open("t:open", "/etc/passwd", ORead, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write("t:write", f, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Errorf("write on read-only handle err = %v", err)
	}
	// Closed handle rejects everything.
	if err := p.Close(f); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadAll("t:read", f); !errors.Is(err, ErrBadFD) {
		t.Errorf("read after close err = %v", err)
	}
	if err := p.Close(f); !errors.Is(err, ErrBadFD) {
		t.Errorf("double close err = %v", err)
	}
}

func TestAppendAndPartialRead(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	f, err := p.Create("t:c", "/tmp/log", 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write("t:w1", f, []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write("t:w2", f, []byte("world")); err != nil {
		t.Fatal(err)
	}
	p.Close(f)

	g, err := p.Open("t:o", "/tmp/log", ORead, 0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Read("t:r1", g, 5)
	if err != nil || string(first) != "hello" {
		t.Fatalf("partial read = %q, %v", first, err)
	}
	rest, err := p.ReadAll("t:r2", g)
	if err != nil || string(rest) != " world" {
		t.Fatalf("rest = %q, %v", rest, err)
	}
	// Append mode starts at EOF.
	h, err := p.Open("t:a", "/tmp/log", OWrite|OAppend, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write("t:w3", h, []byte("!")); err != nil {
		t.Fatal(err)
	}
	data, _ := k.FS.ReadFile("/tmp/log")
	if string(data) != "hello world!" {
		t.Errorf("after append: %q", data)
	}
}

func TestStatAndLstat(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	if _, err := k.FS.Symlink("/", "/etc/passwd", "/tmp/ln", 100, 100); err != nil {
		t.Fatal(err)
	}
	st, err := p.Stat("t:stat", "/tmp/ln")
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != vfs.TypeRegular || st.Path != "/etc/passwd" {
		t.Errorf("Stat = %+v", st)
	}
	lst, err := p.Lstat("t:lstat", "/tmp/ln")
	if err != nil {
		t.Fatal(err)
	}
	if !lst.Symlink || lst.Path != "/tmp/ln" {
		t.Errorf("Lstat = %+v", lst)
	}
	if _, err := p.Stat("t:statmiss", "/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("stat missing err = %v", err)
	}
}

func TestReadlinkReadDir(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	if _, err := k.FS.Symlink("/", "target", "/tmp/ln", 100, 100); err != nil {
		t.Fatal(err)
	}
	tgt, err := p.Readlink("t:rl", "/tmp/ln")
	if err != nil || tgt != "target" {
		t.Fatalf("Readlink = %q, %v", tgt, err)
	}
	if _, err := p.Readlink("t:rl2", "/etc/passwd"); err == nil {
		t.Error("Readlink on regular file succeeded")
	}
	names, err := p.ReadDir("t:rd", "/etc")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "passwd" || names[1] != "shadow" {
		t.Errorf("ReadDir = %v", names)
	}
}

func TestUnlinkRenamePermissions(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	// Alice cannot unlink from /etc.
	if err := p.Unlink("t:ul", "/etc/passwd"); !errors.Is(err, ErrPerm) {
		t.Errorf("unlink /etc/passwd err = %v", err)
	}
	// But can in /tmp.
	if _, err := p.Create("t:c", "/tmp/mine", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p.Unlink("t:ul2", "/tmp/mine"); err != nil {
		t.Errorf("unlink own tmp file: %v", err)
	}
	// Rename across writable dirs works.
	if _, err := p.Create("t:c2", "/tmp/a", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p.Rename("t:mv", "/tmp/a", "/home/alice/b"); err != nil {
		t.Errorf("rename: %v", err)
	}
	// Rename into /etc denied.
	if _, err := p.Create("t:c3", "/tmp/c", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p.Rename("t:mv2", "/tmp/c", "/etc/c"); !errors.Is(err, ErrPerm) {
		t.Errorf("rename into /etc err = %v", err)
	}
}

func TestChmodChownAuthority(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	if _, err := p.Create("t:c", "/tmp/f", 0o644); err != nil {
		t.Fatal(err)
	}
	// Owner may chmod.
	if err := p.Chmod("t:chmod", "/tmp/f", 0o600); err != nil {
		t.Errorf("own chmod: %v", err)
	}
	// Non-owner may not.
	if err := p.Chmod("t:chmod2", "/etc/passwd", 0o666); !errors.Is(err, ErrPerm) {
		t.Errorf("chmod other's file err = %v", err)
	}
	// Only root chowns.
	if err := p.Chown("t:chown", "/tmp/f", 0, 0); !errors.Is(err, ErrPerm) {
		t.Errorf("alice chown err = %v", err)
	}
	rootP := k.NewProc(proc.NewCred(0, 0), nil, "/")
	if err := rootP.Chown("t:chown2", "/tmp/f", 666, 666); err != nil {
		t.Errorf("root chown: %v", err)
	}
	n, _ := k.FS.Lookup("/", "/tmp/f")
	if n.UID != 666 {
		t.Errorf("uid after chown = %d", n.UID)
	}
}

func TestChdir(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	if err := p.Chdir("t:cd", "/tmp"); err != nil {
		t.Fatal(err)
	}
	if p.Cwd != "/tmp" {
		t.Errorf("cwd = %q", p.Cwd)
	}
	if err := p.Chdir("t:cd2", "/etc/passwd"); !errors.Is(err, vfs.ErrNotDir) {
		t.Errorf("chdir to file err = %v", err)
	}
	// Relative resolution uses the new cwd.
	if _, err := p.Create("t:c", "scratch", 0o644); err != nil {
		t.Fatal(err)
	}
	if !k.FS.Exists("/tmp/scratch") {
		t.Error("relative create landed elsewhere")
	}
}

func TestGetenvSetenvArg(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := k.NewProc(proc.NewCred(100, 100), proc.NewEnv("PATH", "/usr/bin"), "/", "prog", "-c", "cs352")
	if got := p.Getenv("t:ge", "PATH"); got != "/usr/bin" {
		t.Errorf("Getenv = %q", got)
	}
	if got := p.Getenv("t:ge2", "MISSING"); got != "" {
		t.Errorf("missing Getenv = %q", got)
	}
	p.Setenv("t:se", "IFS", " \t\n")
	if p.Env["IFS"] != " \t\n" {
		t.Error("Setenv did not store")
	}
	if got := p.Arg("t:arg", 2); got != "cs352" {
		t.Errorf("Arg(2) = %q", got)
	}
	if got := p.Arg("t:arg2", 99); got != "" {
		t.Errorf("Arg(99) = %q", got)
	}
	if p.NArgs() != 3 {
		t.Errorf("NArgs = %d", p.NArgs())
	}
}

func TestExecSUIDSemantics(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	// Install a set-UID root binary that reports its credentials.
	if err := k.FS.WriteFile("/usr/bin/reporter", []byte("#!"), 0o4755, 0, 0); err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram("/usr/bin/reporter", func(p *Proc) int {
		p.Printf("euid=%d uid=%d", p.Cred.EUID, p.Cred.UID)
		return 0
	})
	p := alice(k)
	exit, err := p.Exec("t:exec", "/usr/bin/reporter")
	if err != nil || exit != 0 {
		t.Fatalf("exec: %d, %v", exit, err)
	}
	if got := p.Stdout.String(); got != "euid=0 uid=100" {
		t.Errorf("child creds = %q, want euid=0 uid=100 (SUID)", got)
	}
}

func TestExecPATHResolution(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	if err := k.FS.WriteFile("/usr/bin/tool", []byte("#!"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	ran := false
	k.RegisterProgram("/usr/bin/tool", func(p *Proc) int { ran = true; return 0 })
	p := alice(k)
	if _, err := p.Exec("t:exec", "tool"); err != nil {
		t.Fatalf("PATH exec: %v", err)
	}
	if !ran {
		t.Error("program did not run")
	}
	// The implicit PATH read appears on the trace — the paper's "invisible
	// use of an internal entity by a system call".
	found := false
	for _, ev := range k.Bus.Trace() {
		if ev.Call.Op == interpose.OpGetenv && strings.Contains(ev.Call.Site, "PATH!implicit") {
			found = true
		}
	}
	if !found {
		t.Error("implicit PATH interaction not on trace")
	}
	// Missing command.
	if exit, err := p.Exec("t:exec2", "no-such-cmd"); !errors.Is(err, ErrNotFound) || exit != 127 {
		t.Errorf("missing cmd = %d, %v", exit, err)
	}
}

func TestExecPATHHijack(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	if err := k.FS.WriteFile("/usr/bin/mail", []byte("#!"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.MkdirAll("/", "/home/mallory/bin", 0o777, 666, 666); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.WriteFile("/home/mallory/bin/mail", []byte("#!"), 0o777, 666, 666); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(proc.NewCred(100, 100), proc.NewEnv("PATH", "/home/mallory/bin:/usr/bin"), "/")
	if _, err := p.Exec("t:exec", "mail"); err != nil {
		t.Fatal(err)
	}
	ev := k.Bus.EventAt("t:exec#0")
	if ev == nil || ev.ResolvedPath != "/home/mallory/bin/mail" {
		t.Errorf("resolved = %+v, want mallory's mail first on PATH", ev)
	}
}

func TestExecPermissionDenied(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	if err := k.FS.WriteFile("/usr/bin/rootonly", []byte("#!"), 0o700, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := alice(k)
	if exit, err := p.Exec("t:exec", "/usr/bin/rootonly"); !errors.Is(err, ErrPerm) || exit != 126 {
		t.Errorf("exec denied = %d, %v", exit, err)
	}
}

func TestRunCrashRecovery(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	exit, crash := k.Run(p, func(p *Proc) int {
		buf := make([]byte, 8)
		p.CopyBounded(buf, []byte("way too long for eight bytes"))
		return 0
	})
	if crash == nil || exit != 139 {
		t.Fatalf("crash = %v, exit = %d", crash, exit)
	}
	if !strings.Contains(crash.Error(), "overflow") {
		t.Errorf("crash msg = %q", crash.Error())
	}
	// Non-crash panics propagate.
	defer func() {
		if recover() == nil {
			t.Error("foreign panic swallowed")
		}
	}()
	k.Run(p, func(p *Proc) int { panic("unrelated") })
}

func TestSetEUID(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	// SUID process drops and regains privilege.
	p := k.NewProc(proc.Cred{UID: 100, GID: 100, EUID: 0, EGID: 0}, nil, "/")
	if err := p.SetEUID(100); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if p.Cred.EUID != 100 {
		t.Error("euid not dropped")
	}
	// After dropping, cannot become arbitrary user.
	if err := p.SetEUID(666); !errors.Is(err, ErrPerm) {
		t.Errorf("seteuid(666) err = %v", err)
	}
	// Restoring the real uid is always allowed.
	if err := p.SetEUID(100); err != nil {
		t.Errorf("restore: %v", err)
	}
}

func TestNetSyscalls(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	k.Net = netsim.New()
	k.Net.AddDNS("db", "10.1.1.1")
	k.Net.AddService(&netsim.Service{
		Addr: "10.1.1.1:5432", Available: true, Trusted: true,
		Script: []netsim.Message{{From: "db", Data: []byte("row1"), Authentic: true}},
	})
	p := alice(k)
	addr, err := p.DNSLookup("t:dns", "db")
	if err != nil || addr != "10.1.1.1" {
		t.Fatalf("dns = %q, %v", addr, err)
	}
	conn, err := p.Connect("t:conn", addr+":5432")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Recv("t:recv", conn)
	if err != nil || string(m.Data) != "row1" || !m.Authentic {
		t.Fatalf("recv = %+v, %v", m, err)
	}
	if err := p.Send("t:send", conn, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	if got := conn.Service().Addr; got != "10.1.1.1:5432" {
		t.Errorf("service addr = %q", got)
	}
}

func TestNetAbsent(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	if _, err := p.DNSLookup("t:dns", "x"); !errors.Is(err, ErrNoNet) {
		t.Errorf("dns err = %v", err)
	}
	if _, err := p.Connect("t:conn", "x:1"); !errors.Is(err, ErrNoNet) {
		t.Errorf("connect err = %v", err)
	}
}

func TestRegistrySyscalls(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	k.Reg = registry.New()
	if _, err := k.Reg.CreateKey(`HKLM\Software\App`, registry.UnprotectedACL()); err != nil {
		t.Fatal(err)
	}
	if err := k.Reg.SetString(`HKLM\Software\App`, "Dir", `C:\App`, registry.System); err != nil {
		t.Fatal(err)
	}
	p := alice(k)
	v, err := p.RegGetString("t:rg", `HKLM\Software\App`, "Dir")
	if err != nil || v != `C:\App` {
		t.Fatalf("RegGetString = %q, %v", v, err)
	}
	// Unprivileged user can write the unprotected key.
	if err := p.RegSetString("t:rs", `HKLM\Software\App`, "Dir", `C:\Evil`); err != nil {
		t.Errorf("unprotected set: %v", err)
	}
	// Admin (euid 0) can delete.
	rootP := k.NewProc(proc.NewCred(0, 0), nil, "/")
	if err := rootP.RegDeleteValue("t:rd", `HKLM\Software\App`, "Dir"); err != nil {
		t.Errorf("admin delete: %v", err)
	}
	// Dword round trip.
	if err := k.Reg.SetDWord(`HKLM\Software\App`, "N", 7, registry.System); err != nil {
		t.Fatal(err)
	}
	d, err := p.RegGetDWord("t:rgd", `HKLM\Software\App`, "N")
	if err != nil || d != 7 {
		t.Errorf("RegGetDWord = %d, %v", d, err)
	}
}

func TestRegistryAbsent(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	if _, err := p.RegGetString("t:rg", `HKLM\X`, "v"); !errors.Is(err, ErrNoReg) {
		t.Errorf("err = %v", err)
	}
}

func TestMailboxes(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	k.PostMessage("spooler", []byte("job 1"))
	k.PostMessage("spooler", []byte("job 2"))
	p := alice(k)
	m1, err := p.MsgRecv("t:mr", "spooler")
	if err != nil || string(m1) != "job 1" {
		t.Fatalf("MsgRecv = %q, %v", m1, err)
	}
	if err := p.MsgSend("t:ms", "printer", []byte("out")); err != nil {
		t.Fatal(err)
	}
	if got := k.PeekMailbox("printer"); len(got) != 1 || string(got[0]) != "out" {
		t.Errorf("printer mailbox = %v", got)
	}
	// Drain then empty.
	if _, err := p.MsgRecv("t:mr2", "spooler"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.MsgRecv("t:mr3", "spooler"); err == nil {
		t.Error("empty mailbox recv succeeded")
	}
}

func TestInterpositionPreHookRedirectsOpen(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	k.Bus.OnPre(func(c *interpose.Call) {
		if c.Site == "victim:open" {
			c.Path = "/etc/passwd"
		}
	})
	p := k.NewProc(proc.NewCred(0, 0), nil, "/")
	f, err := p.Open("victim:open", "/tmp/harmless", ORead, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := p.ReadAll("victim:read", f)
	if !strings.Contains(string(data), "alice") {
		t.Error("pre-hook redirection did not take effect")
	}
}

func TestInterpositionPostHookPerturbsInput(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	k.Bus.OnPost(func(c *interpose.Call, r *interpose.Result) {
		if c.Op == interpose.OpGetenv && c.Path == "PATH" {
			r.Data = []byte("/attacker:/usr/bin")
		}
	})
	p := alice(k)
	if got := p.Getenv("t:ge", "PATH"); got != "/attacker:/usr/bin" {
		t.Errorf("perturbed PATH = %q", got)
	}
}

func TestTraceCarriesCredentials(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := k.NewProc(proc.Cred{UID: 100, GID: 100, EUID: 0, EGID: 0}, nil, "/")
	if _, err := p.Create("t:c", "/tmp/x", 0o644); err != nil {
		t.Fatal(err)
	}
	ev := k.Bus.EventAt("t:c#0")
	if ev == nil {
		t.Fatal("no event")
	}
	if ev.Call.UID != 100 || ev.Call.EUID != 0 {
		t.Errorf("creds on trace = uid %d euid %d", ev.Call.UID, ev.Call.EUID)
	}
}

func TestReadFileHelper(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	data, err := p.ReadFile("t:rf", "/etc/passwd")
	if err != nil || !strings.Contains(string(data), "root") {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// Two interactions appear: open and read.
	if k.Bus.EventAt("t:rf:open#0") == nil || k.Bus.EventAt("t:rf:read#0") == nil {
		t.Error("ReadFile did not produce open+read interactions")
	}
}

func TestSetUmask(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	old := p.SetUmask(0)
	if old != 0o022 {
		t.Errorf("old umask = %o", uint16(old))
	}
	f, err := p.Create("t:c", "/tmp/wide", 0o666)
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	n, _ := k.FS.Lookup("/", "/tmp/wide")
	if n.Mode != 0o666 {
		t.Errorf("mode with umask 0 = %o", uint16(n.Mode))
	}
}
