package kernel

import (
	"fmt"
	"strings"

	"repro/internal/interpose"
	"repro/internal/sim/vfs"
)

// Getenv reads an environment variable through the bus — the
// environment-variable input channel of Table 5. Missing variables return
// the empty string, as with getenv(3).
func (p *Proc) Getenv(site, name string) string {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpGetenv, Kind: interpose.KindEnvVar, Path: name,
	})
	val, ok := p.Env[c.Path]
	r := &interpose.Result{Flag: ok}
	if ok {
		r.Data = []byte(val)
	}
	p.end(c, r, c.Path)
	return string(r.Data)
}

// Setenv writes an environment variable.
func (p *Proc) Setenv(site, name, value string) {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpSetenv, Kind: interpose.KindEnvVar,
		Path: name, Data: []byte(value),
	})
	p.Env[c.Path] = string(c.Data)
	p.end(c, &interpose.Result{}, c.Path)
}

// Arg fetches the i'th command-line argument through the bus — the user
// input channel of Table 5. Out-of-range indices return "".
func (p *Proc) Arg(site string, i int) string {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpArg, Kind: interpose.KindArg,
		Path: fmt.Sprintf("argv[%d]", i), Flags: i,
	})
	var val string
	if c.Flags >= 0 && c.Flags < len(p.Args) {
		val = p.Args[c.Flags]
	}
	r := &interpose.Result{Data: []byte(val)}
	p.end(c, r, c.Path)
	return string(r.Data)
}

// NArgs returns the argument count (no interaction: the count is not
// environment data, the values are).
func (p *Proc) NArgs() int { return len(p.Args) }

// Umask0 models umask(0): it returns the previous mask. The permission-mask
// perturbation of Table 5 targets the mask an application inherits.
func (p *Proc) SetUmask(mask vfs.Mode) vfs.Mode {
	old := p.Umask
	p.Umask = mask & 0o777
	return old
}

// Exec runs the program at path with the given arguments in a child
// process and returns its exit code. Names without a slash are resolved
// through the PATH environment variable — an *implicit* environment
// interaction (the paper's example of an internal entity used invisibly by
// a system call), surfaced on the bus with an ":PATH!implicit" site suffix.
// If the resolved file carries the set-UID (set-GID) bit, the child runs
// with the file owner's effective uid (gid).
func (p *Proc) Exec(site, path string, argv ...string) (int, error) {
	lookPath := path
	if !strings.Contains(path, "/") {
		dirs := splitPathList(p.Getenv(site+":PATH!implicit", "PATH"))
		found := ""
		for _, d := range dirs {
			cand := d + "/" + path
			if n, err := p.K.FS.Lookup(p.Cwd, cand); err == nil && n.Type == vfs.TypeRegular {
				found = cand
				break
			}
		}
		if found == "" {
			// Still record the failed exec interaction.
			c := p.begin(&interpose.Call{
				Site: site, Op: interpose.OpExec, Kind: interpose.KindFile, Path: path,
			})
			r := &interpose.Result{Err: fmt.Errorf("%w: %s", ErrNotFound, path)}
			p.end(c, r, "")
			return 127, r.Err
		}
		lookPath = found
	}

	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpExec, Kind: interpose.KindFile, Path: lookPath,
	})
	var (
		exit     int
		resolved string
		err      error
	)
	exit, resolved, err = p.execResolved(c.Path, argv)
	r := &interpose.Result{N: exit, Err: err}
	p.end(c, r, resolved)
	return r.N, r.Err
}

// ExecTrusted is exec with an ownership check atomic with the exec itself
// (the fexecve discipline): the binary must be owned by requireUID and
// grant no write to group or other at the moment of execution. A
// stat-then-exec sequence leaves a TOCTTOU window that environment
// perturbation exploits; this call closes it.
func (p *Proc) ExecTrusted(site, path string, requireUID int, argv ...string) (int, error) {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpExec, Kind: interpose.KindFile, Path: path,
	})
	var (
		exit     int
		resolved string
		err      error
	)
	res, rerr := p.K.FS.Resolve(p.Cwd, c.Path, true)
	switch {
	case rerr != nil:
		exit, err = 126, rerr
	case res.Node == nil:
		exit, resolved, err = 127, res.Path, fmt.Errorf("%w: %s", vfs.ErrNotExist, res.Path)
	case res.Node.UID != requireUID || res.Node.Mode&0o022 != 0:
		exit, resolved, err = 126, res.Path,
			fmt.Errorf("%w: %s not exclusively owned by uid %d", ErrPerm, res.Path, requireUID)
	default:
		exit, resolved, err = p.execResolved(c.Path, argv)
	}
	r := &interpose.Result{N: exit, Err: err}
	p.end(c, r, resolved)
	return r.N, r.Err
}

func (p *Proc) execResolved(path string, argv []string) (int, string, error) {
	res, err := p.K.FS.Resolve(p.Cwd, path, true)
	if err != nil {
		return 126, "", err
	}
	if res.Node == nil {
		return 127, res.Path, fmt.Errorf("%w: %s", vfs.ErrNotExist, res.Path)
	}
	if res.Node.Type != vfs.TypeRegular {
		return 126, res.Path, fmt.Errorf("%w: %s", ErrNoExec, res.Path)
	}
	if !vfs.Allows(res.Node, p.Cred.EUID, p.Cred.EGID, vfs.WantExec) {
		return 126, res.Path, fmt.Errorf("%w: exec %s", ErrPerm, res.Path)
	}

	child := p.K.NewProc(p.Cred, p.Env.Clone(), p.Cwd, argv...)
	if res.Node.Mode&vfs.ModeSetUID != 0 {
		child.Cred.EUID = res.Node.UID
		child.Cred.SUID = res.Node.UID
	}
	if res.Node.Mode&vfs.ModeSetGID != 0 {
		child.Cred.EGID = res.Node.GID
	}

	prog, ok := p.K.programs[res.Path]
	if !ok {
		// Unknown image: simulate a successful run. The exec *event* is
		// what the security oracle cares about.
		return 0, res.Path, nil
	}
	exit, crash := p.K.Run(child, prog)
	// Child output is visible on the parent's terminal.
	p.Stdout.Write(child.Stdout.Bytes())
	p.Stderr.Write(child.Stderr.Bytes())
	if crash != nil {
		return exit, res.Path, crash
	}
	return exit, res.Path, nil
}

// splitPathList splits a colon-separated PATH value, dropping empties.
func splitPathList(v string) []string {
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ":")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
