package kernel

import (
	"repro/internal/interpose"
	"repro/internal/sim/registry"
)

// principalFor maps POSIX-style effective credentials onto the registry's
// NT-style principals: euid 0 acts as Administrator, everyone else as an
// authenticated user.
func principalFor(euid int) registry.Principal {
	if euid == 0 {
		return registry.Administrator
	}
	return registry.AuthenticatedUser
}

// RegGetString reads a registry string value through the bus. Registry
// reads are environment input: the Section 4.2 perturbations rewrite what
// the consuming module receives by writing the unprotected key first.
func (p *Proc) RegGetString(site, key, name string) (string, error) {
	if p.K.Reg == nil {
		return "", ErrNoReg
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpRegGet, Kind: interpose.KindRegistry,
		Path: key, Path2: name,
	})
	s, err := p.K.Reg.GetString(c.Path, c.Path2, principalFor(p.Cred.EUID))
	r := &interpose.Result{Data: []byte(s), Err: err}
	p.end(c, r, c.Path+`\`+c.Path2)
	if r.Err != nil {
		return "", r.Err
	}
	return string(r.Data), nil
}

// RegGetDWord reads a registry numeric value through the bus.
func (p *Proc) RegGetDWord(site, key, name string) (uint32, error) {
	if p.K.Reg == nil {
		return 0, ErrNoReg
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpRegGet, Kind: interpose.KindRegistry,
		Path: key, Path2: name,
	})
	d, err := p.K.Reg.GetDWord(c.Path, c.Path2, principalFor(p.Cred.EUID))
	r := &interpose.Result{N: int(d), Err: err}
	p.end(c, r, c.Path+`\`+c.Path2)
	if r.Err != nil {
		return 0, r.Err
	}
	return uint32(r.N), nil
}

// RegSetString writes a registry string value through the bus.
func (p *Proc) RegSetString(site, key, name, value string) error {
	if p.K.Reg == nil {
		return ErrNoReg
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpRegSet, Kind: interpose.KindRegistry,
		Path: key, Path2: name, Data: []byte(value),
	})
	err := p.K.Reg.SetString(c.Path, c.Path2, string(c.Data), principalFor(p.Cred.EUID))
	r := &interpose.Result{Err: err}
	p.end(c, r, c.Path+`\`+c.Path2)
	return r.Err
}

// RegDeleteValue removes a registry value through the bus.
func (p *Proc) RegDeleteValue(site, key, name string) error {
	if p.K.Reg == nil {
		return ErrNoReg
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpRegDel, Kind: interpose.KindRegistry,
		Path: key, Path2: name,
	})
	err := p.K.Reg.DeleteValue(c.Path, c.Path2, principalFor(p.Cred.EUID))
	r := &interpose.Result{Err: err}
	p.end(c, r, c.Path+`\`+c.Path2)
	return r.Err
}
