package kernel

import (
	"fmt"

	"repro/internal/interpose"
	"repro/internal/sim/vfs"
)

// Open flags, combinable.
const (
	ORead = 1 << iota
	OWrite
	OCreate
	OTrunc
	OExcl
	OAppend
)

// File is an open file handle. Like a real descriptor it pins the inode:
// environment perturbations after open (rename, re-link) do not change
// what the handle reads or writes — a property the TOCTTOU scenarios rely
// on to distinguish safe from unsafe code.
type File struct {
	node   *vfs.Inode
	Path   string // resolved path at open time
	flags  int
	offset int
	closed bool
}

// Name returns the resolved path the file was opened at.
func (f *File) Name() string { return f.Path }

// Info is the result of Stat/Lstat.
type Info struct {
	Path    string // resolved object identity
	Type    vfs.NodeType
	Mode    vfs.Mode
	UID     int
	GID     int
	Size    int
	Symlink bool // true when Lstat saw a symlink
}

// Open opens the file at path. With OCreate the interaction is classified
// as a create (the paper's lpr example perturbs exactly that point). The
// returned handle pins the resolved inode.
func (p *Proc) Open(site, path string, flags int, mode vfs.Mode) (*File, error) {
	op := interpose.OpOpen
	if flags&OCreate != 0 {
		op = interpose.OpCreate
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: op, Kind: interpose.KindFile,
		Path: path, Mode: uint16(mode), Flags: flags,
	})
	f, resolved, err := p.openLocked(c.Path, c.Flags, vfs.Mode(c.Mode))
	r := &interpose.Result{Err: err}
	p.end(c, r, resolved)
	if r.Err != nil {
		return nil, r.Err
	}
	return f, nil
}

// openLocked performs the open against the (possibly perturbed) world.
func (p *Proc) openLocked(path string, flags int, mode vfs.Mode) (*File, string, error) {
	res, err := p.K.FS.Resolve(p.Cwd, path, true)
	if err != nil {
		return nil, "", err
	}
	cred := p.Cred
	switch {
	case res.Node != nil:
		if flags&OCreate != 0 && flags&OExcl != 0 {
			return nil, res.Path, fmt.Errorf("%w: %s", vfs.ErrExist, res.Path)
		}
		if res.Node.Type == vfs.TypeDir && flags&(OWrite|OTrunc) != 0 {
			return nil, res.Path, fmt.Errorf("%w: %s", vfs.ErrIsDir, res.Path)
		}
		var want vfs.Mode
		if flags&ORead != 0 {
			want |= vfs.WantRead
		}
		if flags&(OWrite|OTrunc|OAppend) != 0 {
			want |= vfs.WantWrite
		}
		if want != 0 && !vfs.Allows(res.Node, cred.EUID, cred.EGID, want) {
			return nil, res.Path, fmt.Errorf("%w: open %s", ErrPerm, res.Path)
		}
		node := res.Node
		if flags&OTrunc != 0 && node.Type == vfs.TypeRegular {
			node = p.K.FS.Own(node)
			node.Data = nil
			node.Gen++
		}
		f := &File{node: node, Path: res.Path, flags: flags}
		if flags&OAppend != 0 {
			f.offset = len(node.Data)
		}
		return f, res.Path, nil
	case flags&OCreate != 0:
		if res.Parent == nil {
			return nil, res.Path, fmt.Errorf("%w: %s", vfs.ErrInvalid, path)
		}
		if !vfs.Allows(res.Parent, cred.EUID, cred.EGID, vfs.WantWrite|vfs.WantExec) {
			return nil, res.Path, fmt.Errorf("%w: create in parent of %s", ErrPerm, res.Path)
		}
		n, err := p.K.FS.Create(p.Cwd, path, mode&^p.Umask, cred.EUID, cred.EGID, flags&OExcl != 0)
		if err != nil {
			return nil, res.Path, err
		}
		return &File{node: n, Path: res.Path, flags: flags}, res.Path, nil
	default:
		return nil, res.Path, fmt.Errorf("%w: %s", vfs.ErrNotExist, res.Path)
	}
}

// Create is creat(2): open with OWrite|OCreate|OTrunc. The BSD lpr flaw in
// the paper's Section 3.4 lives at exactly this call.
func (p *Proc) Create(site, path string, mode vfs.Mode) (*File, error) {
	return p.Open(site, path, OWrite|OCreate|OTrunc, mode)
}

// Read reads up to n bytes from the file. The returned bytes pass through
// the bus as environment input, so indirect faults can perturb them.
func (p *Proc) Read(site string, f *File, n int) ([]byte, error) {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpRead, Kind: interpose.KindFile, Path: f.Path,
	})
	var (
		data []byte
		err  error
	)
	// The handle pins inode identity; View maps it to the fork's current
	// version so reads observe copy-on-write privatizations.
	var node *vfs.Inode
	if f != nil {
		node = p.K.FS.View(f.node)
	}
	switch {
	case f == nil || f.closed:
		err = ErrBadFD
	case f.flags&ORead == 0:
		err = fmt.Errorf("%w: not opened for reading", ErrBadFD)
	case node.Type != vfs.TypeRegular:
		err = fmt.Errorf("%w: %s", vfs.ErrIsDir, f.Path)
	default:
		end := f.offset + n
		if end > len(node.Data) {
			end = len(node.Data)
		}
		if f.offset < end {
			data = append([]byte(nil), node.Data[f.offset:end]...)
			f.offset = end
		}
	}
	r := &interpose.Result{Data: data, Err: err}
	p.end(c, r, f.Path)
	return r.Data, r.Err
}

// ReadAll reads the entire remaining content of the file.
func (p *Proc) ReadAll(site string, f *File) ([]byte, error) {
	if f == nil || f.node == nil {
		return nil, ErrBadFD
	}
	return p.Read(site, f, len(p.K.FS.View(f.node).Data)-f.offset)
}

// ReadFile opens, fully reads, and closes the file at path in one
// interaction pair (open + read).
func (p *Proc) ReadFile(site, path string) ([]byte, error) {
	f, err := p.Open(site+":open", path, ORead, 0)
	if err != nil {
		return nil, err
	}
	defer p.Close(f)
	return p.ReadAll(site+":read", f)
}

// Write appends data to the file at the current offset.
func (p *Proc) Write(site string, f *File, data []byte) (int, error) {
	path := ""
	if f != nil {
		path = f.Path
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpWrite, Kind: interpose.KindFile,
		Path: path, Data: data,
	})
	var (
		n   int
		err error
	)
	switch {
	case f == nil || f.closed:
		err = ErrBadFD
	case f.flags&(OWrite|OAppend) == 0:
		err = fmt.Errorf("%w: not opened for writing", ErrBadFD)
	default:
		// Extend or overwrite from offset. Own privatizes a shared inode
		// (deep-copying Data) before the in-place copy below, so a write
		// through a pre-fork handle never touches the frozen base image.
		node := p.K.FS.Own(f.node)
		buf := node.Data
		need := f.offset + len(c.Data)
		if need > len(buf) {
			nb := make([]byte, need)
			copy(nb, buf)
			buf = nb
		}
		copy(buf[f.offset:], c.Data)
		node.Data = buf
		node.Gen++
		f.offset += len(c.Data)
		n = len(c.Data)
	}
	r := &interpose.Result{N: n, Err: err}
	p.end(c, r, path)
	return r.N, r.Err
}

// Close releases the handle. Closing twice returns ErrBadFD.
func (p *Proc) Close(f *File) error {
	if f == nil || f.closed {
		return ErrBadFD
	}
	f.closed = true
	return nil
}

// Stat resolves path (following symlinks) and reports object metadata.
func (p *Proc) Stat(site, path string) (Info, error) {
	return p.stat(site, path, true)
}

// Lstat is Stat without following a final symlink.
func (p *Proc) Lstat(site, path string) (Info, error) {
	return p.stat(site, path, false)
}

func (p *Proc) stat(site, path string, follow bool) (Info, error) {
	op := interpose.OpStat
	if !follow {
		op = interpose.OpLstat
	}
	c := p.begin(&interpose.Call{Site: site, Op: op, Kind: interpose.KindFile, Path: path})
	var (
		info Info
		err  error
	)
	res, rerr := p.K.FS.Resolve(p.Cwd, c.Path, follow)
	switch {
	case rerr != nil:
		err = rerr
	case res.Node == nil:
		err = fmt.Errorf("%w: %s", vfs.ErrNotExist, res.Path)
	default:
		info = Info{
			Path: res.Path, Type: res.Node.Type, Mode: res.Node.Mode,
			UID: res.Node.UID, GID: res.Node.GID, Size: len(res.Node.Data),
			Symlink: res.Node.Type == vfs.TypeSymlink,
		}
	}
	r := &interpose.Result{Err: err}
	p.end(c, r, info.Path)
	return info, r.Err
}

// Readlink returns the target of the symlink at path, as environment input.
func (p *Proc) Readlink(site, path string) (string, error) {
	c := p.begin(&interpose.Call{Site: site, Op: interpose.OpReadlink, Kind: interpose.KindFile, Path: path})
	var (
		target string
		err    error
	)
	n, lerr := p.K.FS.LookupNoFollow(p.Cwd, c.Path)
	switch {
	case lerr != nil:
		err = lerr
	case n.Type != vfs.TypeSymlink:
		err = fmt.Errorf("%w: not a symlink: %s", vfs.ErrInvalid, c.Path)
	default:
		target = n.Target
	}
	r := &interpose.Result{Str: target, Err: err}
	p.end(c, r, c.Path)
	return r.Str, r.Err
}

// ReadDir lists the directory at path, as environment input.
func (p *Proc) ReadDir(site, path string) ([]string, error) {
	c := p.begin(&interpose.Call{Site: site, Op: interpose.OpReadDir, Kind: interpose.KindDir, Path: path})
	var (
		names []string
		err   error
	)
	res, rerr := p.K.FS.Resolve(p.Cwd, c.Path, true)
	switch {
	case rerr != nil:
		err = rerr
	case res.Node == nil:
		err = fmt.Errorf("%w: %s", vfs.ErrNotExist, res.Path)
	case res.Node.Type != vfs.TypeDir:
		err = fmt.Errorf("%w: %s", vfs.ErrNotDir, res.Path)
	case !vfs.Allows(res.Node, p.Cred.EUID, p.Cred.EGID, vfs.WantRead):
		err = fmt.Errorf("%w: readdir %s", ErrPerm, res.Path)
	default:
		names = res.Node.Children()
	}
	r := &interpose.Result{Err: err}
	if err == nil {
		r.Data = []byte(joinLines(names))
	}
	resolved := ""
	if err == nil {
		resolved = res.Path
	}
	p.end(c, r, resolved)
	if r.Err != nil {
		return nil, r.Err
	}
	return splitLines(string(r.Data)), nil
}

// Mkdir creates a directory.
func (p *Proc) Mkdir(site, path string, mode vfs.Mode) error {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpMkdir, Kind: interpose.KindDir,
		Path: path, Mode: uint16(mode),
	})
	err := p.parentWriteChecked(c.Path, func() error {
		_, err := p.K.FS.Mkdir(p.Cwd, c.Path, vfs.Mode(c.Mode)&^p.Umask, p.Cred.EUID, p.Cred.EGID)
		return err
	})
	r := &interpose.Result{Err: err}
	p.end(c, r, p.resolvedPath(c.Path))
	return r.Err
}

// resolvedPath returns the post-symlink identity of path — what the
// operation actually touched — falling back to lexical canonicalisation
// when resolution fails.
func (p *Proc) resolvedPath(path string) string {
	if res, err := p.K.FS.Resolve(p.Cwd, path, true); err == nil {
		return res.Path
	}
	return vfs.Canon(p.Cwd, path)
}

// Unlink removes a file (not following a final symlink).
func (p *Proc) Unlink(site, path string) error {
	c := p.begin(&interpose.Call{Site: site, Op: interpose.OpUnlink, Kind: interpose.KindFile, Path: path})
	resolved := ""
	err := p.parentWriteChecked(c.Path, func() error {
		res, rerr := p.K.FS.Resolve(p.Cwd, c.Path, false)
		if rerr == nil {
			resolved = res.Path
		}
		return p.K.FS.Unlink(p.Cwd, c.Path)
	})
	r := &interpose.Result{Err: err}
	p.end(c, r, resolved)
	return r.Err
}

// Rename moves oldp to newp.
func (p *Proc) Rename(site, oldp, newp string) error {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpRename, Kind: interpose.KindFile,
		Path: oldp, Path2: newp,
	})
	err := p.parentWriteChecked(c.Path, func() error {
		return p.parentWriteChecked(c.Path2, func() error {
			return p.K.FS.Rename(p.Cwd, c.Path, c.Path2)
		})
	})
	r := &interpose.Result{Err: err}
	p.end(c, r, p.resolvedPath(c.Path2))
	return r.Err
}

// Symlink creates a link at linkp pointing to target.
func (p *Proc) Symlink(site, target, linkp string) error {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpSymlink, Kind: interpose.KindFile,
		Path: linkp, Path2: target,
	})
	err := p.parentWriteChecked(c.Path, func() error {
		_, err := p.K.FS.Symlink(p.Cwd, c.Path2, c.Path, p.Cred.EUID, p.Cred.EGID)
		return err
	})
	r := &interpose.Result{Err: err}
	p.end(c, r, p.resolvedLinkPath(c.Path))
	return r.Err
}

// Chmod changes permission bits; only the owner or root may.
func (p *Proc) Chmod(site, path string, mode vfs.Mode) error {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpChmod, Kind: interpose.KindFile,
		Path: path, Mode: uint16(mode),
	})
	var resolved string
	err := func() error {
		n, lerr := p.K.FS.Lookup(p.Cwd, c.Path)
		if lerr != nil {
			return lerr
		}
		res, _ := p.K.FS.Resolve(p.Cwd, c.Path, true)
		resolved = res.Path
		if p.Cred.EUID != 0 && p.Cred.EUID != n.UID {
			return fmt.Errorf("%w: chmod %s", ErrPerm, resolved)
		}
		n = p.K.FS.Own(n)
		n.Mode = vfs.Mode(c.Mode) & vfs.ModePermMask
		n.Gen++
		return nil
	}()
	r := &interpose.Result{Err: err}
	p.end(c, r, resolved)
	return r.Err
}

// Chown changes ownership; only root may (BSD semantics).
func (p *Proc) Chown(site, path string, uid, gid int) error {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpChown, Kind: interpose.KindFile,
		Path: path, Flags: uid, Mode: uint16(gid),
	})
	var resolved string
	err := func() error {
		n, lerr := p.K.FS.Lookup(p.Cwd, c.Path)
		if lerr != nil {
			return lerr
		}
		res, _ := p.K.FS.Resolve(p.Cwd, c.Path, true)
		resolved = res.Path
		if p.Cred.EUID != 0 {
			return fmt.Errorf("%w: chown %s", ErrPerm, resolved)
		}
		n = p.K.FS.Own(n)
		n.UID, n.GID = c.Flags, int(c.Mode)
		n.Gen++
		return nil
	}()
	r := &interpose.Result{Err: err}
	p.end(c, r, resolved)
	return r.Err
}

// Chdir changes the working directory.
func (p *Proc) Chdir(site, path string) error {
	c := p.begin(&interpose.Call{Site: site, Op: interpose.OpChdir, Kind: interpose.KindDir, Path: path})
	var resolved string
	err := func() error {
		res, rerr := p.K.FS.Resolve(p.Cwd, c.Path, true)
		if rerr != nil {
			return rerr
		}
		if res.Node == nil {
			return fmt.Errorf("%w: %s", vfs.ErrNotExist, res.Path)
		}
		if res.Node.Type != vfs.TypeDir {
			return fmt.Errorf("%w: %s", vfs.ErrNotDir, res.Path)
		}
		resolved = res.Path
		p.Cwd = res.Path
		return nil
	}()
	r := &interpose.Result{Err: err}
	p.end(c, r, resolved)
	return r.Err
}

// parentWriteChecked runs op after verifying the caller can write the
// parent directory of path.
func (p *Proc) parentWriteChecked(path string, op func() error) error {
	res, err := p.K.FS.Resolve(p.Cwd, path, false)
	if err != nil {
		return err
	}
	if res.Parent != nil && !vfs.Allows(res.Parent, p.Cred.EUID, p.Cred.EGID, vfs.WantWrite|vfs.WantExec) {
		return fmt.Errorf("%w: directory of %s", ErrPerm, res.Path)
	}
	return op()
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// resolvedLinkPath is resolvedPath for operations whose object is the link
// entry itself (symlink creation, unlink): intermediate symlinks are
// expanded but the final component is not followed.
func (p *Proc) resolvedLinkPath(path string) string {
	if res, err := p.K.FS.Resolve(p.Cwd, path, false); err == nil {
		return res.Path
	}
	return vfs.Canon(p.Cwd, path)
}
