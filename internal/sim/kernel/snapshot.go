package kernel

import (
	"maps"

	"repro/internal/interpose"
	"repro/internal/sim/vfs"
)

// Snapshot is an immutable clean-world image: the filesystem frozen in
// place plus deep copies or references to every other piece of kernel
// state a run can touch. Fork stamps out a mutable kernel in O(small) —
// the VFS is structurally shared copy-on-write, so only the substrates
// with per-run mutable state (network scripts, registry hives, account
// database, mailbox queues) are cloned eagerly.
type Snapshot struct {
	fs        *vfs.FS
	programs  map[string]Program
	mailboxes map[string][][]byte
	nextPID   int
	src       *Kernel
}

// Snapshot freezes the kernel's filesystem and registry and captures the
// rest of its state as the clean-world image. The receiver must not be
// mutated afterwards — VFS and registry writes panic once frozen, and the
// mailbox queues are deep-copied here so later Fork calls see the
// capture-time state.
func (k *Kernel) Snapshot() *Snapshot {
	k.FS.Freeze()
	if k.Reg != nil {
		k.Reg.Freeze()
	}
	return &Snapshot{
		fs:        k.FS,
		programs:  k.programs,
		mailboxes: cloneMailboxes(k.mailboxes),
		nextPID:   k.nextPID,
		src:       k,
	}
}

// FS returns the frozen base filesystem. The security oracle can use it
// directly as the pre-run state snapshot: it is immutable by construction,
// so no defensive clone is needed.
func (s *Snapshot) FS() *vfs.FS { return s.fs }

// FreezeFS freezes the kernel's current filesystem in place, installs a
// copy-on-write fork of it for the continuing run, and returns the frozen
// image — the zero-clone snapshot primitive. The image is the world
// exactly as of the call, captured in O(cow-map size) instead of a deep
// clone; every subsequent operation lands in the fork, including writes
// through file handles opened before the call (handle inodes resolve
// through the fork's view/own barriers, never mutating the image).
// Re-freezing mid-run is legal: a run forked from a campaign snapshot
// simply gains a second frozen generation, and forks of forks chase the
// copy-on-write chain transparently.
func (k *Kernel) FreezeFS() *vfs.FS {
	frozen := k.FS
	frozen.Freeze()
	k.FS = frozen.Fork()
	return frozen
}

// Fork returns a fresh mutable kernel backed by the snapshot. The VFS and
// registry are copy-on-write forks of the frozen state; network, accounts,
// and mailboxes are cloned so no mutable state is shared between forks.
// PID and inode counters continue from the snapshot's values, which keeps
// a forked run's trace bit-identical to one against a freshly built world.
func (s *Snapshot) Fork() *Kernel {
	k := &Kernel{
		FS:        s.fs.Fork(),
		Users:     s.src.Users.Clone(),
		Bus:       interpose.NewBus(),
		programs:  maps.Clone(s.programs),
		mailboxes: cloneMailboxes(s.mailboxes),
		nextPID:   s.nextPID,
	}
	if s.src.Net != nil {
		k.Net = s.src.Net.Clone()
	}
	if s.src.Reg != nil {
		k.Reg = s.src.Reg.Fork()
	}
	return k
}

func cloneMailboxes(m map[string][][]byte) map[string][][]byte {
	out := make(map[string][][]byte, len(m))
	for name, msgs := range m {
		cp := make([][]byte, len(msgs))
		for i, msg := range msgs {
			cp[i] = append([]byte(nil), msg...)
		}
		out[name] = cp
	}
	return out
}
