package netsim

import (
	"errors"
	"testing"
)

func newTestNet() *Net {
	n := New()
	n.AddDNS("printhost", "10.0.0.5")
	n.AddService(&Service{
		Addr:      "10.0.0.5:515",
		Host:      "printhost",
		Available: true,
		Trusted:   true,
		Script: []Message{
			{From: "printhost", Data: []byte("OK spool"), Authentic: true},
			{From: "printhost", Data: []byte("OK done"), Authentic: true},
		},
		Steps: []string{"HELO", "JOB", "DATA"},
	})
	return n
}

func TestLookup(t *testing.T) {
	t.Parallel()
	n := newTestNet()
	addr, err := n.Lookup("printhost")
	if err != nil || addr != "10.0.0.5" {
		t.Fatalf("Lookup = %q, %v", addr, err)
	}
	if _, err := n.Lookup("nowhere"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("unknown host err = %v", err)
	}
}

func TestDNSPoisoning(t *testing.T) {
	t.Parallel()
	n := newTestNet()
	n.SetDNS("printhost", "10.66.6.6")
	addr, err := n.Lookup("printhost")
	if err != nil || addr != "10.66.6.6" {
		t.Fatalf("after SetDNS: %q, %v", addr, err)
	}
}

func TestDialAndScript(t *testing.T) {
	t.Parallel()
	n := newTestNet()
	c, err := n.Dial("10.0.0.5:515")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	m1, err := c.Recv()
	if err != nil || string(m1.Data) != "OK spool" || !m1.Authentic {
		t.Fatalf("Recv 1 = %+v, %v", m1, err)
	}
	m2, err := c.Recv()
	if err != nil || string(m2.Data) != "OK done" {
		t.Fatalf("Recv 2 = %+v, %v", m2, err)
	}
	if _, err := c.Recv(); !errors.Is(err, ErrConnClosed) {
		t.Errorf("exhausted Recv err = %v", err)
	}
}

func TestDialFailures(t *testing.T) {
	t.Parallel()
	n := newTestNet()
	if _, err := n.Dial("10.0.0.9:99"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("missing service err = %v", err)
	}
	n.Service("10.0.0.5:515").Available = false
	if _, err := n.Dial("10.0.0.5:515"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("unavailable err = %v", err)
	}
}

func TestSendProtocolSteps(t *testing.T) {
	t.Parallel()
	n := newTestNet()
	c, err := n.Dial("10.0.0.5:515")
	if err != nil {
		t.Fatal(err)
	}
	for i, msg := range []string{"HELO lpr", "JOB 1", "DATA xyz"} {
		if err := c.Send([]byte(msg)); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if c.Step() != 3 {
		t.Errorf("Step = %d, want 3", c.Step())
	}
	if err := c.Send([]byte("EXTRA")); !errors.Is(err, ErrProtocol) {
		t.Errorf("extra step err = %v", err)
	}
	if len(c.Sent) != 4 {
		t.Errorf("Sent records = %d, want 4 (violating send still recorded)", len(c.Sent))
	}
}

func TestCloseSemantics(t *testing.T) {
	t.Parallel()
	n := newTestNet()
	c, err := n.Dial("10.0.0.5:515")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // double close tolerated
	if _, err := c.Recv(); !errors.Is(err, ErrConnClosed) {
		t.Errorf("Recv after close err = %v", err)
	}
	if err := c.Send(nil); !errors.Is(err, ErrConnClosed) {
		t.Errorf("Send after close err = %v", err)
	}
}

func TestMessageCloneIsolation(t *testing.T) {
	t.Parallel()
	m := Message{From: "a", Data: []byte("hello"), Authentic: true}
	c := m.Clone()
	c.Data[0] = 'X'
	if string(m.Data) != "hello" {
		t.Error("Clone shares data")
	}
}

func TestRecvIsolatedFromScript(t *testing.T) {
	t.Parallel()
	n := newTestNet()
	c, err := n.Dial("10.0.0.5:515")
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	m.Data[0] = 'X'
	c2, err := n.Dial("10.0.0.5:515")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(m2.Data) != "OK spool" {
		t.Error("Recv leaked script buffer to caller")
	}
}

func TestNetClone(t *testing.T) {
	t.Parallel()
	n := newTestNet()
	c := n.Clone()
	// Perturb the clone.
	c.Service("10.0.0.5:515").Available = false
	c.Service("10.0.0.5:515").Script[0].Data[0] = 'X'
	c.SetDNS("printhost", "10.9.9.9")
	// Original unchanged.
	if !n.Service("10.0.0.5:515").Available {
		t.Error("clone shares Available")
	}
	if string(n.Service("10.0.0.5:515").Script[0].Data) != "OK spool" {
		t.Error("clone shares script data")
	}
	if addr, _ := n.Lookup("printhost"); addr != "10.0.0.5" {
		t.Error("clone shares dns")
	}
}

func TestServicesSorted(t *testing.T) {
	t.Parallel()
	n := New()
	n.AddService(&Service{Addr: "b:1", Available: true})
	n.AddService(&Service{Addr: "a:1", Available: true})
	svcs := n.Services()
	if len(svcs) != 2 || svcs[0].Addr != "a:1" {
		t.Errorf("Services = %v", svcs)
	}
	if svcs[0].Host != "a:1" {
		t.Errorf("default Host = %q, want addr", svcs[0].Host)
	}
}
