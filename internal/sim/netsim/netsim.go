// Package netsim is the simulated network substrate: hosts, a DNS table,
// connection-oriented services with scripted replies, and message
// provenance.
//
// The EAI model's network entity (Table 6) carries five perturbable
// attributes: message authenticity, protocol conformance, socket sharing,
// service availability, and entity trustability. Each is a first-class
// field here so the direct-fault appliers can flip it between the check and
// the use, exactly as a network attacker would.
package netsim

import (
	"errors"
	"fmt"
	"sort"
)

// Static errors matched with errors.Is by applications and the oracle.
var (
	ErrUnknownHost   = errors.New("netsim: unknown host")
	ErrUnavailable   = errors.New("netsim: service unavailable")
	ErrConnRefused   = errors.New("netsim: connection refused")
	ErrConnClosed    = errors.New("netsim: connection closed")
	ErrProtocol      = errors.New("netsim: protocol violation")
	ErrNoSuchService = errors.New("netsim: no such service")
)

// Message is one unit of network input with provenance. Authentic reports
// whether the message really originates from the peer the application
// believes it is talking to; the message-authenticity perturbation clears
// it and rewrites From.
type Message struct {
	From      string // host identity the message claims
	Data      []byte
	Authentic bool
}

// Clone returns an independent copy of the message.
func (m Message) Clone() Message {
	c := m
	c.Data = append([]byte(nil), m.Data...)
	return c
}

// Service is a network endpoint applications connect to. Script holds the
// replies it serves in order; Steps names the protocol steps a conforming
// exchange performs, which the protocol perturbation reorders or drops.
type Service struct {
	Addr      string // "host:port"
	Host      string
	Available bool
	Trusted   bool
	Script    []Message
	Steps     []string

	// SharedWith, when non-empty, names another process that holds the
	// same socket — the socket-sharing perturbation of Table 6.
	SharedWith string
}

// Net is the network world: a DNS table plus services keyed by address.
// The zero value is unusable; create instances with New.
type Net struct {
	dns      map[string]string // hostname → address
	services map[string]*Service
}

// New returns an empty network.
func New() *Net {
	return &Net{
		dns:      make(map[string]string),
		services: make(map[string]*Service),
	}
}

// AddDNS maps hostname to an address.
func (n *Net) AddDNS(host, addr string) { n.dns[host] = addr }

// Lookup resolves a hostname. It returns ErrUnknownHost for missing names.
func (n *Net) Lookup(host string) (string, error) {
	addr, ok := n.dns[host]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	return addr, nil
}

// SetDNS overwrites a DNS entry; the DNS-reply perturbation uses it to
// poison resolution.
func (n *Net) SetDNS(host, addr string) { n.dns[host] = addr }

// AddService registers a service. The service is reachable at its Addr.
func (n *Net) AddService(s *Service) {
	if s.Host == "" {
		s.Host = s.Addr
	}
	n.services[s.Addr] = s
}

// Service returns the service at addr, or nil.
func (n *Net) Service(addr string) *Service { return n.services[addr] }

// Services returns all services sorted by address.
func (n *Net) Services() []*Service {
	out := make([]*Service, 0, len(n.services))
	for _, s := range n.services {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Conn is an established connection to a service. It replays the service's
// script on Recv and records what the application Sends.
type Conn struct {
	svc    *Service
	pos    int
	step   int
	closed bool
	Sent   [][]byte
}

// Dial connects to the service at addr. Unavailable services refuse, which
// is exactly what the service-availability perturbation arranges.
func (n *Net) Dial(addr string) (*Conn, error) {
	s, ok := n.services[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	if !s.Available {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, addr)
	}
	return &Conn{svc: s}, nil
}

// Recv returns the next scripted message. After the script is exhausted it
// returns ErrConnClosed.
func (c *Conn) Recv() (Message, error) {
	if c.closed {
		return Message{}, ErrConnClosed
	}
	if c.pos >= len(c.svc.Script) {
		return Message{}, ErrConnClosed
	}
	m := c.svc.Script[c.pos].Clone()
	c.pos++
	return m, nil
}

// Send transmits data to the service, recording it for inspection. When
// the service defines protocol Steps, Send also advances the protocol
// cursor; sending past the final step is a protocol violation.
func (c *Conn) Send(data []byte) error {
	if c.closed {
		return ErrConnClosed
	}
	c.Sent = append(c.Sent, append([]byte(nil), data...))
	if len(c.svc.Steps) > 0 {
		if c.step >= len(c.svc.Steps) {
			return fmt.Errorf("%w: extra step beyond %q", ErrProtocol, c.svc.Steps)
		}
		c.step++
	}
	return nil
}

// Step returns the index of the next expected protocol step.
func (c *Conn) Step() int { return c.step }

// Service returns the connected service.
func (c *Conn) Service() *Service { return c.svc }

// Close closes the connection. Double close is a no-op, matching net.Conn
// tolerance in practice.
func (c *Conn) Close() { c.closed = true }

// Clone deep-copies the network world, so a fault campaign can reset
// between runs.
func (n *Net) Clone() *Net {
	c := New()
	for h, a := range n.dns {
		c.dns[h] = a
	}
	for addr, s := range n.services {
		cs := &Service{
			Addr:       s.Addr,
			Host:       s.Host,
			Available:  s.Available,
			Trusted:    s.Trusted,
			SharedWith: s.SharedWith,
			Steps:      append([]string(nil), s.Steps...),
		}
		for _, m := range s.Script {
			cs.Script = append(cs.Script, m.Clone())
		}
		c.services[addr] = cs
	}
	return c
}
