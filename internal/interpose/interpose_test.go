package interpose

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestOpHasInput(t *testing.T) {
	t.Parallel()
	withInput := []Op{OpRead, OpReadlink, OpReadDir, OpGetenv, OpArg, OpRecv,
		OpDNS, OpAccept, OpMsgRecv, OpRegGet}
	withoutInput := []Op{OpOpen, OpCreate, OpWrite, OpClose, OpStat, OpMkdir,
		OpUnlink, OpRename, OpSymlink, OpChmod, OpChown, OpChdir, OpExec,
		OpSetenv, OpConnect, OpSend, OpListen, OpMsgSend, OpRegSet, OpRegDel}
	for _, op := range withInput {
		if !op.HasInput() {
			t.Errorf("%s.HasInput() = false, want true", op)
		}
	}
	for _, op := range withoutInput {
		if op.HasInput() {
			t.Errorf("%s.HasInput() = true, want false", op)
		}
	}
}

func TestObjectKindString(t *testing.T) {
	t.Parallel()
	tests := []struct {
		k    ObjectKind
		want string
	}{
		{KindFile, "file"},
		{KindDir, "directory"},
		{KindEnvVar, "environment-variable"},
		{KindArg, "user-input"},
		{KindNetwork, "network"},
		{KindProcess, "process"},
		{KindRegistry, "registry"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestPointIDRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(site string, occur uint8) bool {
		id := PointID(site, int(occur))
		s, o := SplitPointID(id)
		return s == site && o == int(occur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitPointIDMalformed(t *testing.T) {
	t.Parallel()
	s, o := SplitPointID("no-separator")
	if s != "no-separator" || o != -1 {
		t.Errorf("SplitPointID = %q, %d", s, o)
	}
}

func TestBusSequencingAndOccurrence(t *testing.T) {
	t.Parallel()
	b := NewBus()
	calls := []string{"a", "b", "a", "a", "b"}
	for _, site := range calls {
		c := &Call{Site: site, Op: OpOpen, Kind: KindFile}
		b.Begin(c)
		b.End(c, &Result{}, "")
	}
	tr := b.Trace()
	if len(tr) != 5 {
		t.Fatalf("trace len = %d, want 5", len(tr))
	}
	wantOccur := []int{0, 0, 1, 2, 1}
	for i, ev := range tr {
		if ev.Call.Seq != i {
			t.Errorf("event %d Seq = %d", i, ev.Call.Seq)
		}
		if ev.Call.Occur != wantOccur[i] {
			t.Errorf("event %d Occur = %d, want %d", i, ev.Call.Occur, wantOccur[i])
		}
	}
	pts := b.Points()
	if len(pts) != 5 {
		t.Errorf("Points = %v, want 5 distinct", pts)
	}
	sites := b.Sites()
	if len(sites) != 2 || sites[0] != "a" || sites[1] != "b" {
		t.Errorf("Sites = %v", sites)
	}
}

func TestPreHookMutatesCall(t *testing.T) {
	t.Parallel()
	b := NewBus()
	b.OnPre(func(c *Call) {
		if c.Site == "victim" {
			c.Path = "/etc/passwd"
			b.MarkMutated()
		}
	})
	c := &Call{Site: "victim", Op: OpCreate, Kind: KindFile, Path: "/tmp/spool"}
	b.Begin(c)
	if c.Path != "/etc/passwd" {
		t.Errorf("pre-hook did not mutate path: %q", c.Path)
	}
	b.End(c, &Result{}, "/etc/passwd")
	if !b.Trace()[0].Mutated {
		t.Error("trace event not marked mutated")
	}
}

func TestPostHookMutatesResult(t *testing.T) {
	t.Parallel()
	b := NewBus()
	b.OnPost(func(c *Call, r *Result) {
		if c.Op == OpGetenv {
			r.Data = []byte("/attacker/bin:/usr/bin")
		}
	})
	c := &Call{Site: "s", Op: OpGetenv, Kind: KindEnvVar, Path: "PATH"}
	b.Begin(c)
	r := &Result{Data: []byte("/usr/bin")}
	b.End(c, r, "")
	if string(r.Data) != "/attacker/bin:/usr/bin" {
		t.Errorf("post-hook did not mutate result: %q", r.Data)
	}
}

func TestPostHookForcesError(t *testing.T) {
	t.Parallel()
	errDenied := errors.New("service unavailable")
	b := NewBus()
	b.OnPost(func(c *Call, r *Result) { r.Err = errDenied })
	c := &Call{Site: "s", Op: OpConnect, Kind: KindNetwork, Path: "db:5432"}
	b.Begin(c)
	r := &Result{}
	b.End(c, r, "")
	if !errors.Is(r.Err, errDenied) {
		t.Errorf("err = %v", r.Err)
	}
}

func TestTraceDataIsolation(t *testing.T) {
	t.Parallel()
	b := NewBus()
	payload := []byte("secret")
	c := &Call{Site: "s", Op: OpRead, Kind: KindFile, Path: "/f"}
	b.Begin(c)
	r := &Result{Data: payload}
	b.End(c, r, "/f")
	payload[0] = 'X'
	if string(b.Trace()[0].Result.Data) != "secret" {
		t.Error("trace aliases caller buffer")
	}
}

func TestRecordingToggle(t *testing.T) {
	t.Parallel()
	b := NewBus()
	b.SetRecording(false)
	c := &Call{Site: "s", Op: OpOpen}
	b.Begin(c)
	b.End(c, &Result{}, "")
	if b.Len() != 0 {
		t.Error("recorded while disabled")
	}
	b.SetRecording(true)
	c2 := &Call{Site: "s", Op: OpOpen}
	b.Begin(c2)
	b.End(c2, &Result{}, "")
	if b.Len() != 1 {
		t.Error("did not record while enabled")
	}
	// Occurrence counting continues even while not recording.
	if c2.Occur != 1 {
		t.Errorf("Occur = %d, want 1", c2.Occur)
	}
}

func TestEventAt(t *testing.T) {
	t.Parallel()
	b := NewBus()
	for i := 0; i < 3; i++ {
		c := &Call{Site: "loop", Op: OpRead, Path: "/f"}
		b.Begin(c)
		b.End(c, &Result{N: i}, "/f")
	}
	ev := b.EventAt("loop#1")
	if ev == nil || ev.Result.N != 1 {
		t.Fatalf("EventAt(loop#1) = %+v", ev)
	}
	if b.EventAt("loop#9") != nil {
		t.Error("EventAt for missing point should be nil")
	}
}

func TestZeroValueBusUsable(t *testing.T) {
	t.Parallel()
	var b Bus
	c := &Call{Site: "s", Op: OpOpen}
	b.Begin(c)
	b.End(c, &Result{}, "")
	// Zero value does not record (recording defaults false) but must not
	// panic and must still count occurrences.
	if c.Occur != 0 {
		t.Errorf("Occur = %d", c.Occur)
	}
}

func TestMutatedFlagResetsPerCall(t *testing.T) {
	t.Parallel()
	b := NewBus()
	first := true
	b.OnPre(func(c *Call) {
		if first {
			b.MarkMutated()
			first = false
		}
	})
	c1 := &Call{Site: "a", Op: OpOpen}
	b.Begin(c1)
	b.End(c1, &Result{}, "")
	c2 := &Call{Site: "a", Op: OpOpen}
	b.Begin(c2)
	b.End(c2, &Result{}, "")
	tr := b.Trace()
	if !tr[0].Mutated || tr[1].Mutated {
		t.Errorf("mutated flags = %v, %v; want true, false", tr[0].Mutated, tr[1].Mutated)
	}
}
