// Package interpose implements the interaction-point bus at the heart of
// the environment-perturbation methodology.
//
// The EAI model (Du & Mathur, DSN 2000) injects faults "at the points where
// the environment and the application interact" — in a real system, the
// libc/syscall boundary. In this reproduction every simulated syscall is
// routed through a Bus: pre-hooks run before the kernel touches the
// environment (where *direct* environment faults are applied, Section 3.3
// step 6), post-hooks run after the result is computed but before the
// application sees it (where *indirect* faults perturb the value an
// internal entity receives). The Bus also records the execution trace from
// which interaction points are enumerated.
package interpose

import (
	"fmt"
	"strconv"
	"strings"
)

// Op identifies the kind of environment interaction.
type Op string

// Operations. The set mirrors the syscall surface of the simulated kernel
// plus the network, registry, and process-message substrates.
const (
	OpOpen     Op = "open"
	OpCreate   Op = "create"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpClose    Op = "close"
	OpStat     Op = "stat"
	OpLstat    Op = "lstat"
	OpMkdir    Op = "mkdir"
	OpRmdir    Op = "rmdir"
	OpUnlink   Op = "unlink"
	OpRename   Op = "rename"
	OpSymlink  Op = "symlink"
	OpReadlink Op = "readlink"
	OpReadDir  Op = "readdir"
	OpChmod    Op = "chmod"
	OpChown    Op = "chown"
	OpChdir    Op = "chdir"
	OpExec     Op = "exec"
	OpGetenv   Op = "getenv"
	OpSetenv   Op = "setenv"
	OpArg      Op = "arg"     // command-line (user) input
	OpConnect  Op = "connect" // network
	OpSend     Op = "send"    // network
	OpRecv     Op = "recv"    // network
	OpDNS      Op = "dns"     // network name resolution
	OpListen   Op = "listen"  // network
	OpAccept   Op = "accept"  // network
	OpMsgRecv  Op = "msgrecv" // process (IPC) input
	OpMsgSend  Op = "msgsend" // process (IPC) output
	OpRegOpen  Op = "regopen" // registry
	OpRegGet   Op = "regget"  // registry read
	OpRegSet   Op = "regset"  // registry write
	OpRegDel   Op = "regdel"  // registry delete
)

// HasInput reports whether the operation returns environment data to the
// application — the paper's criterion (Section 3.3 step 3) for deciding
// whether indirect faults apply at an interaction point in addition to
// direct faults.
func (o Op) HasInput() bool {
	switch o {
	case OpRead, OpReadlink, OpReadDir, OpGetenv, OpArg, OpRecv, OpDNS,
		OpAccept, OpMsgRecv, OpRegGet:
		return true
	default:
		return false
	}
}

// ObjectKind classifies the environment entity an interaction touches,
// following the paper's three-way entity taxonomy (file system, network,
// process) extended with the NT registry entity of Section 4.2 and the two
// input-only pseudo-entities (environment variables and user arguments)
// from Table 5.
type ObjectKind int

// Object kinds. Enums start at 1; the zero value means "unclassified".
const (
	KindFile ObjectKind = iota + 1
	KindDir
	KindEnvVar
	KindArg
	KindNetwork
	KindProcess
	KindRegistry
)

// String returns the entity-kind name used in reports.
func (k ObjectKind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindDir:
		return "directory"
	case KindEnvVar:
		return "environment-variable"
	case KindArg:
		return "user-input"
	case KindNetwork:
		return "network"
	case KindProcess:
		return "process"
	case KindRegistry:
		return "registry"
	default:
		return fmt.Sprintf("ObjectKind(%d)", int(k))
	}
}

// Call describes one environment interaction about to happen. Pre-hooks may
// mutate the argument fields (e.g. redirect a path); the kernel then acts
// on the mutated values.
type Call struct {
	// Seq is the global sequence number of the interaction in this run.
	Seq int
	// Site is the static identity of the call site in the application
	// ("turnin:fopen-projlist"). Together with Occur it identifies an
	// interaction point in the execution trace.
	Site string
	// Occur is the 0-based occurrence index of this Site in the run.
	Occur int
	// Op is the interaction kind.
	Op Op
	// Kind classifies the environment entity.
	Kind ObjectKind
	// Path is the primary object identifier: a file path, environment
	// variable name, registry key, or network address.
	Path string
	// Path2 is the secondary object for two-object ops (rename target,
	// symlink target).
	Path2 string
	// Data is the outgoing payload for write-like ops.
	Data []byte
	// Mode and Flags carry numeric arguments (permission bits, open flags).
	Mode  uint16
	Flags int
	// UID and EUID are the calling process's real and effective uids at the
	// time of the call; the oracle uses them to decide whether an access
	// happened "while privileged".
	UID, EUID int
	// GID and EGID are the corresponding group ids.
	GID, EGID int
	// Cwd is the caller's working directory at the time of the call, so
	// fault appliers can resolve relative object paths.
	Cwd string
}

// PointID returns the interaction-point identity "site#occur".
func (c *Call) PointID() string { return PointID(c.Site, c.Occur) }

// PointID builds the canonical interaction-point identity string. It is
// called once per traced event in the compare hot path, so it avoids the
// fmt machinery.
func PointID(site string, occur int) string {
	return site + "#" + strconv.Itoa(occur)
}

// SplitPointID parses a PointID back into site and occurrence. It returns
// occur -1 when the string has no "#" suffix.
func SplitPointID(id string) (site string, occur int) {
	i := strings.LastIndex(id, "#")
	if i < 0 {
		return id, -1
	}
	occur = 0
	if _, err := fmt.Sscanf(id[i+1:], "%d", &occur); err != nil {
		return id, -1
	}
	return id[:i], occur
}

// Result carries the outcome of an interaction back toward the
// application. Post-hooks may mutate it — that mutation *is* an indirect
// environment fault.
type Result struct {
	// Data is the payload returned to the application (file bytes, env
	// value, received message).
	Data []byte
	// Str is a secondary string result (resolved link target, DNS answer).
	Str string
	// N is a numeric result (bytes written).
	N int
	// Flag is a boolean result channel (e.g. message authenticity).
	Flag bool
	// Err is the interaction error, if any. Hooks may set or clear it
	// (e.g. the service-availability perturbation forces an error).
	Err error
}

// Event is one record of the execution trace: the call as the kernel
// finally saw it, the result as the application finally saw it, and the
// post-resolution object identity.
type Event struct {
	Call   Call
	Result Result
	// ResolvedPath is the final object identity after symlink expansion —
	// what was actually read, written, or executed. The security oracle
	// keys on this, not on the path the application named.
	ResolvedPath string
	// Mutated records whether any hook changed this interaction (used by
	// reports to mark the injected point).
	Mutated bool
}

// PreHook runs before the kernel performs the interaction. Returning is
// the only control flow; hooks mutate *Call (and, via closures, the
// environment itself) to express faults.
type PreHook func(c *Call)

// PostHook runs after the kernel computed the result, before the
// application observes it.
type PostHook func(c *Call, r *Result)

// Bus is the interaction-point bus for one process run. The zero value is
// ready to use. Bus is not safe for concurrent use; each simulated process
// run owns one bus.
type Bus struct {
	pre       []PreHook
	post      []PostHook
	trace     []Event
	seq       int
	siteHits  map[string]int
	recording bool
	mutated   bool
}

// NewBus returns a Bus with trace recording enabled.
func NewBus() *Bus {
	return &Bus{siteHits: make(map[string]int), recording: true}
}

// OnPre registers a pre-hook (direct-fault position).
func (b *Bus) OnPre(h PreHook) { b.pre = append(b.pre, h) }

// OnPost registers a post-hook (indirect-fault position).
func (b *Bus) OnPost(h PostHook) { b.post = append(b.post, h) }

// SetRecording toggles trace recording (benchmark harnesses disable it to
// measure injection overhead in isolation).
func (b *Bus) SetRecording(on bool) { b.recording = on }

// ReserveTrace hands the bus a pre-sized backing buffer for trace
// recording, so a run harness that knows the expected trace length (from
// the campaign's clean run) can recycle one allocation across runs. The
// buffer is adopted only while the trace is still empty and only when it
// grows capacity; len(buf) is ignored. The caller must not touch buf
// again until the bus is discarded.
func (b *Bus) ReserveTrace(buf []Event) {
	if len(b.trace) == 0 && cap(buf) > cap(b.trace) {
		b.trace = buf[:0]
	}
}

// Begin stamps the call with its sequence and occurrence numbers and runs
// the pre-hooks. The kernel must call Begin exactly once per interaction,
// before touching the environment.
func (b *Bus) Begin(c *Call) {
	if b.siteHits == nil {
		b.siteHits = make(map[string]int)
	}
	c.Seq = b.seq
	b.seq++
	c.Occur = b.siteHits[c.Site]
	b.siteHits[c.Site]++
	b.mutated = false
	for _, h := range b.pre {
		h(c)
	}
}

// MarkMutated flags the current interaction as perturbed. Fault appliers
// call this so the trace records where the injection landed.
func (b *Bus) MarkMutated() { b.mutated = true }

// End runs the post-hooks and appends the trace event. resolved is the
// post-symlink object identity (empty when not applicable).
func (b *Bus) End(c *Call, r *Result, resolved string) {
	for _, h := range b.post {
		h(c, r)
	}
	if b.recording {
		ev := Event{Call: *c, Result: *r, ResolvedPath: resolved, Mutated: b.mutated}
		if r.Data != nil {
			ev.Result.Data = append([]byte(nil), r.Data...)
		}
		if c.Data != nil {
			ev.Call.Data = append([]byte(nil), c.Data...)
		}
		b.trace = append(b.trace, ev)
	}
}

// Trace returns the recorded events in execution order. The returned slice
// is owned by the bus; callers must not mutate it.
func (b *Bus) Trace() []Event { return b.trace }

// Len returns the number of recorded interactions.
func (b *Bus) Len() int { return len(b.trace) }

// Points returns the distinct interaction points (site#occur) in trace
// order. This is the enumeration from which the Section 3.3 procedure
// draws its per-point fault lists.
func (b *Bus) Points() []string {
	pts := make([]string, 0, len(b.trace))
	seen := make(map[string]bool, len(b.trace))
	for i := range b.trace {
		id := b.trace[i].Call.PointID()
		if !seen[id] {
			seen[id] = true
			pts = append(pts, id)
		}
	}
	return pts
}

// Sites returns the distinct static call sites in first-hit order.
func (b *Bus) Sites() []string {
	sites := make([]string, 0, len(b.trace))
	seen := make(map[string]bool, len(b.trace))
	for i := range b.trace {
		s := b.trace[i].Call.Site
		if !seen[s] {
			seen[s] = true
			sites = append(sites, s)
		}
	}
	return sites
}

// EventAt returns the first trace event at the given interaction point, or
// nil when the point never fired.
func (b *Bus) EventAt(pointID string) *Event {
	for i := range b.trace {
		if b.trace[i].Call.PointID() == pointID {
			return &b.trace[i]
		}
	}
	return nil
}
