// Package repro is a from-scratch Go reproduction of Du & Mathur,
// "Testing for Software Vulnerability Using Environment Perturbation"
// (DSN 2000).
//
// The library lives under internal/ — see docs/ARCHITECTURE.md for the
// per-package tour (sim → interpose → eai → inject → sched/store →
// policy → coverage → report) — and is driven by the CLIs under cmd/
// and the worked examples under examples/. The package-level tests in
// this directory are the repository's acceptance gate: every number the
// paper publishes, regenerated in one sweep.
package repro
