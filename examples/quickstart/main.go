// Quickstart: build a tiny world, write a three-syscall set-UID program
// against the simulated kernel, run an EAI fault-injection campaign at its
// single environment interaction, and read the verdict.
//
//	go run ./examples/quickstart
//
// From here, scale up to the whole catalog — and make re-runs free by
// attaching the persistent result store (docs/STORE.md):
//
//	go run ./cmd/eptest -all -j 8 -cache /tmp/epstore
package main

import (
	"fmt"
	"log"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/core/report"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
)

// notes is the program under test: a set-UID-root utility that appends a
// line to a world-visible notes file. The flaw is the classic one — it
// creats the file without O_EXCL, trusting that whatever sits at the path
// is really its notes file.
func notes(p *kernel.Proc) int {
	f, err := p.Open("notes:open", "/var/notes/today",
		kernel.OWrite|kernel.OCreate|kernel.OAppend, 0o644)
	if err != nil {
		p.Eprintf("notes: %v\n", err)
		return 1
	}
	defer p.Close(f)
	if _, err := p.Write("notes:write", f, []byte("note: "+p.Arg("notes:arg", 1)+"\n")); err != nil {
		return 1
	}
	return 0
}

func main() {
	// 1. A world factory: every injection run starts from this state.
	world := func() (*kernel.Kernel, inject.Launch) {
		k := kernel.New()
		k.Users.Add(proc.User{Name: "alice", UID: 100, GID: 100})
		k.Users.Add(proc.User{Name: "mallory", UID: 666, GID: 666})
		must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
		must(k.FS.WriteFile("/etc/passwd", []byte("root:x:0:0:root:/:/bin/sh\n"), 0o644, 0, 0))
		must(k.FS.MkdirAll("/", "/var/notes", 0o777, 0, 0)) // world-writable: anyone may note
		return k, inject.Launch{
			Cred: proc.Cred{UID: 100, GID: 100, EUID: 0, EGID: 0}, // set-UID root
			Env:  proc.NewEnv("PATH", "/usr/bin"),
			Cwd:  "/",
			Args: []string{"notes", "remember the milk"},
			Prog: notes,
		}
	}

	// 2. The campaign: who invokes, who attacks, what may be written.
	campaign := inject.Campaign{
		Name:   "notes-quickstart",
		World:  world,
		Policy: policy.Policy{Invoker: proc.NewCred(100, 100), Attacker: proc.NewCred(666, 666)},
		Faults: eai.Config{Attacker: proc.NewCred(666, 666)},
		Sites:  []string{"notes:open"},
	}

	// 3. Run it: the engine enumerates the interaction points, injects
	// every applicable Table 6 perturbation, and consults the oracle.
	res, err := inject.Run(campaign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Campaign(res))

	fmt.Println("\nWhat happened: the attacker pre-planted objects at /var/notes/today")
	fmt.Println("before the privileged open. Because the program trusts whatever is")
	fmt.Println("there (no O_EXCL, no lstat), the symbolic-link perturbation redirects")
	fmt.Println("its root-privileged write into /etc/passwd.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
