// registry-audit reproduces the paper's Section 4.2 Windows NT study: a
// static sweep for registry keys writable by Everyone, EAI perturbation of
// the modules that consume them, and the exploited/suspected tally the
// paper reports (9 exploited, 20 suspected, of 29 unprotected).
//
//	go run ./examples/registry-audit
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/apps/ntreg"
	"repro/internal/core/inject"
	"repro/internal/core/report"
	"repro/internal/sim/registry"
)

func main() {
	fmt.Println("=== Section 4.2: auditing registry consumers with environment perturbation ===")

	// Step 1 (the paper's static analysis): inventory the unprotected keys.
	survey, err := ntreg.RunSurvey(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic sweep: %d keys writable by Everyone\n", len(survey.UnprotectedKeys))

	// Step 2: perturb every consumer module.
	for _, res := range survey.Results {
		fmt.Println()
		fmt.Print(report.Campaign(res))
	}

	// Step 3: the paper's tally.
	fmt.Printf("\nexploited keys (%d):\n", len(survey.ExploitedKeys))
	for _, k := range survey.ExploitedKeys {
		fmt.Printf("  %s\n", k)
	}
	fmt.Printf("suspected keys with unanalysed consumers (%d):\n", len(survey.SuspectedKeys))
	for i, k := range survey.SuspectedKeys {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(survey.SuspectedKeys)-3)
			break
		}
		fmt.Printf("  %s\n", k)
	}

	// The font-delete narrative, replayed concretely: point the cleanup
	// key at the boot configuration and run the module as an
	// administrator.
	fmt.Println("\n--- the font-key narrative, replayed ---")
	k, l := ntreg.World(ntreg.FontClean)()
	if err := k.Reg.SetString(ntreg.FontCleanKeys[0], "Path", ntreg.BootConfig, registry.Everyone); err != nil {
		log.Fatal(err)
	}
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	k.Run(p, l.Prog)
	if !k.FS.Exists(ntreg.BootConfig) {
		fmt.Printf("  an unprivileged user rewrote %s; the administrator's cleanup\n", ntreg.FontCleanKeys[0])
		fmt.Printf("  module then deleted %s — \"regardless of whether this file is a\n", ntreg.BootConfig)
		fmt.Println("  font file or a security critical file\"")
	}

	// The logon-profile narrative: perturbing the trustability of the
	// profile the (protected) key names.
	fmt.Println("\n--- the logon-profile narrative ---")
	res, err := inject.Run(ntreg.LogondCampaign(ntreg.Logond))
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range res.Violations() {
		for _, v := range in.Violations {
			fmt.Printf("  %s perturbation: %s executed %s as SYSTEM\n",
				strings.TrimPrefix(in.FaultID, "direct/file-system/"), v.Kind, v.Object)
		}
	}
}
