// turnin-audit reproduces the paper's Section 4.1 case study end to end:
// the 41-perturbation campaign against the Purdue turnin program, the two
// exploited vulnerabilities (the Projlist /etc/shadow leak and the "../"
// submit escape), and the repaired program's clean bill.
//
//	go run ./examples/turnin-audit
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/apps/turnin"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/core/report"
)

func main() {
	fmt.Println("=== Section 4.1: auditing turnin with environment perturbation ===")
	fmt.Println()

	res, err := inject.Run(turnin.Campaign(turnin.Vulnerable))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Campaign(res))
	fmt.Println()
	fmt.Print(report.PerPoint(res))

	m := res.Metric()
	fmt.Printf("\npaper: 8 interaction places, 41 perturbations, 9 violations\n")
	fmt.Printf("here : %d interaction places, %d perturbations, %d violations\n",
		m.PointsPerturbed, m.FaultsInjected, m.Violations())

	// The two exploits the paper narrates, replayed concretely.
	fmt.Println("\n--- exploit 1: the Projlist assumption (TA reads /etc/shadow) ---")
	demoShadowLeak()

	fmt.Println("\n--- exploit 2: \"../\" in a submitted file name ---")
	demoDotDotEscape()

	fmt.Println("\n--- after repair ---")
	fixed, err := inject.Run(turnin.Campaign(turnin.Fixed))
	if err != nil {
		log.Fatal(err)
	}
	fm := fixed.Metric()
	fmt.Printf("fixed turnin: %d perturbations, %d violations, fault coverage %.2f\n",
		fm.FaultsInjected, fm.Violations(), fm.FaultCoverage())
}

// demoShadowLeak stages the paper's scenario directly: the TA makes
// Projlist a symbolic link to /etc/shadow, then runs turnin. "Voila, the
// program prints out the content of /etc/shadow!"
func demoShadowLeak() {
	k, l := turnin.World(turnin.Vulnerable)()
	// The TA replaces the Projlist with a link to the shadow file.
	if err := k.FS.RemoveAll(turnin.Projlist); err != nil {
		log.Fatal(err)
	}
	if _, err := k.FS.Symlink("/", "/etc/shadow", turnin.Projlist, turnin.TAUID, turnin.TAUID); err != nil {
		log.Fatal(err)
	}
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	k.Run(p, l.Prog)
	out := p.Stdout.String()
	fmt.Print(indent(out))
	if strings.Contains(out, "SECRETHASH") {
		fmt.Println("  => /etc/shadow content reached the terminal of an unprivileged run")
	}
}

// demoDotDotEscape submits a file named "../.login": the copy escapes the
// project drop directory and lands in the TA's home.
func demoDotDotEscape() {
	k, l := turnin.World(turnin.Vulnerable)()
	// The student stages a malicious .login and submits it under an
	// escaping name.
	if err := k.FS.WriteFile("/home/alice/.login", []byte("exec /bin/evil\n"), 0o644, turnin.InvokerUID, turnin.InvokerUID); err != nil {
		log.Fatal(err)
	}
	l.Args = []string{"turnin", "-c", "cs352", "-p", "assignment1", "../../.login"}
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	k.Run(p, l.Prog)
	// Where did the copy land?
	escaped := turnin.CourseRoot + "/.login"
	if data, err := k.FS.ReadFile(escaped); err == nil && strings.Contains(string(data), "evil") {
		fmt.Printf("  submitted \"../../.login\" overwrote %s:\n%s", escaped, indent(string(data)))
		fmt.Println("  => the TA's login script now runs the student's commands")
	} else {
		// The policy oracle still catches the escape into the submit tree.
		if k.FS.Exists(turnin.SubmitDir + "/.login") {
			fmt.Printf("  submitted file escaped the drop directory into %s\n", turnin.SubmitDir+"/.login")
		}
	}

	// The same flaw, found mechanically by the campaign:
	c := turnin.Campaign(turnin.Vulnerable)
	c.Sites = []string{"turnin:arg-file"}
	res, err := inject.Run(c)
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range res.Violations() {
		for _, v := range in.Violations {
			if v.Kind == policy.KindIntegrity {
				fmt.Printf("  campaign finding: %s under %s\n", v.Object, in.FaultID)
			}
		}
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  | " + strings.Join(lines, "\n  | ") + "\n"
}
