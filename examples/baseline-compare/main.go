// baseline-compare reproduces the Section 5 related-work comparison
// measurably: EAI environment perturbation versus Fuzz random input
// (Miller), AVA internal-state corruption (Ghosh), and the Bishop-Dilger
// static TOCTTOU pattern — all over the same targets and the same oracle.
//
//	go run ./examples/baseline-compare
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/lpr"
	"repro/internal/apps/turnin"
	"repro/internal/baseline/ava"
	"repro/internal/baseline/fuzz"
	"repro/internal/baseline/tocttou"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
)

func main() {
	fmt.Println("=== Section 5: EAI perturbation vs the comparators ===")

	// -- EAI on turnin: the reference numbers.
	eaiRes, err := inject.Run(turnin.Campaign(turnin.Vulnerable))
	if err != nil {
		log.Fatal(err)
	}
	eaiM := eaiRes.Metric()
	fmt.Printf("\nEAI (turnin): %d runs -> %d violations (%.1f%% yield)\n",
		eaiM.FaultsInjected, eaiM.Violations(),
		100*float64(eaiM.Violations())/float64(eaiM.FaultsInjected))

	// -- Fuzz over the utility population.
	results, crashed := fuzz.RunSuite(fuzz.UtilitySuite(), fuzz.Options{Trials: 40, Seed: 1})
	fmt.Printf("\nFuzz (Miller): %d of %d utilities crash under random input (%.0f%%)\n",
		crashed, len(results), 100*float64(crashed)/float64(len(results)))
	for _, r := range results {
		marker := ""
		if r.Crashes > 0 {
			marker = "  <- crashes"
		}
		fmt.Printf("  %-8s %2d/%d crashes, %2d rejects%s\n", r.Name, r.Crashes, r.Trials, r.Errors, marker)
	}
	fmt.Println("  Fuzz sees only crashes; none of turnin's nine violations are crashes-only,")
	fmt.Println("  and random bytes never compose \"../\" or a symlink plant.")

	// -- AVA on turnin at the same 41-run budget.
	c := turnin.Campaign(turnin.Vulnerable)
	avaRes := ava.Run("turnin", c.World, c.Policy, ava.Options{Trials: 41, Seed: 4})
	fmt.Printf("\nAVA (Ghosh): 41 internal-state corruption runs -> %d crashes, %d violation runs\n",
		avaRes.Crashes, avaRes.Violations)
	fmt.Printf("  semantic (integrity/confidentiality) findings: %d (EAI: %d)\n",
		avaRes.ViolationKinds[policy.KindIntegrity]+avaRes.ViolationKinds[policy.KindConfidentiality],
		countSemantic(eaiRes))
	fmt.Println("  AVA corrupts only internal values, so the whole of Table 6 — planted")
	fmt.Println("  symlinks, flipped permissions, registry rewrites — is out of its reach;")
	fmt.Println("  the two approaches are complementary, as the paper argues.")

	// -- Bishop-Dilger static TOCTTOU over both case studies.
	fmt.Println("\nTOCTTOU (Bishop-Dilger):")
	kt, lt := turnin.World(turnin.Vulnerable)()
	pt := kt.NewProc(lt.Cred, lt.Env, lt.Cwd, lt.Args...)
	kt.Run(pt, lt.Prog)
	for _, f := range tocttou.AnalyzeDirs(kt.Bus.Trace()) {
		fmt.Printf("  turnin: %s\n", f)
	}
	kl, ll := lpr.World(lpr.Vulnerable)()
	pl := kl.NewProc(ll.Cred, ll.Env, ll.Cwd, ll.Args...)
	kl.Run(pl, ll.Prog)
	lprFindings := 0
	for _, f := range tocttou.AnalyzeDirs(kl.Bus.Trace()) {
		if f.Object == lpr.SpoolFile {
			lprFindings++
		}
	}
	fmt.Printf("  lpr spool file: %d findings — the checkless creat has no check-use pair,\n", lprFindings)

	lprRes, err := inject.Run(lpr.CreateSiteCampaign(lpr.Vulnerable))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  yet EAI injection defeats it %d ways at the same point.\n",
		lprRes.Metric().Violations())
}

func countSemantic(res *inject.Result) int {
	n := 0
	for _, in := range res.Violations() {
		for _, v := range in.Violations {
			if v.Kind == policy.KindIntegrity || v.Kind == policy.KindConfidentiality {
				n++
			}
		}
	}
	return n
}
