package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core/sched"
)

// isTerminal reports whether w is an interactive terminal — the gate
// between the live progress renderer and the plain log lines. The
// char-device heuristic needs no syscall bindings and is exact for the
// cases that matter here: pipes, files and CI redirections are not
// char devices, real ttys are.
func isTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

// rowState is one campaign's lifecycle position in the progress view.
type rowState int

const (
	rowWaiting rowState = iota
	rowRunning
	rowDone
	rowCached
	rowFailed
)

// progressRow is one campaign's bar.
type progressRow struct {
	label       string
	state       rowState
	done, total int
	err         error
}

// progressRenderer draws live per-campaign progress bars for `eptest
// -all` on a terminal, driven by the dispatcher's serialised event
// stream. Every event redraws the whole block in place (cursor-up +
// clear-line), so the bars update smoothly while jobs interleave; the
// final frame is left on screen above the suite report.
type progressRenderer struct {
	w     io.Writer
	rows  []progressRow
	index map[string]int
	drawn bool
}

// barWidth is the bar's interior width in cells.
const barWidth = 24

// newProgressRenderer sizes the display for the job list, one row per
// job in job order, and is ready to receive Handle calls.
func newProgressRenderer(w io.Writer, jobs []sched.Job) *progressRenderer {
	p := &progressRenderer{w: w, rows: make([]progressRow, len(jobs)), index: make(map[string]int, len(jobs))}
	for i, j := range jobs {
		p.rows[i] = progressRow{label: j.Label()}
		p.index[j.Label()] = i
	}
	return p
}

// Handle consumes one suite event. The dispatcher serialises event
// delivery, so Handle needs no locking.
func (p *progressRenderer) Handle(ev sched.Event) {
	i, ok := p.index[ev.Job.Label()]
	if !ok {
		return
	}
	r := &p.rows[i]
	switch ev.Kind {
	case sched.EventPlanned:
		r.state = rowRunning
		r.total = ev.Total
	case sched.EventProgress:
		r.done, r.total = ev.Done, ev.Total
	case sched.EventDone:
		r.done, r.total = ev.Done, ev.Total
		switch {
		case ev.Err != nil:
			r.state = rowFailed
			r.err = ev.Err
		case ev.Cached:
			r.state = rowCached
		default:
			r.state = rowDone
		}
	}
	p.draw()
}

// Close paints the final frame (covering the no-event edge case) and
// leaves the cursor below the block, where the suite report begins.
func (p *progressRenderer) Close() {
	if !p.drawn {
		p.draw()
	}
}

// draw repaints the whole block in place.
func (p *progressRenderer) draw() {
	var b strings.Builder
	if p.drawn {
		fmt.Fprintf(&b, "\x1b[%dA", len(p.rows))
	}
	p.drawn = true
	for i := range p.rows {
		b.WriteString("\r\x1b[2K")
		b.WriteString(p.rows[i].line())
		b.WriteByte('\n')
	}
	io.WriteString(p.w, b.String())
}

// line renders one row.
func (r *progressRow) line() string {
	switch r.state {
	case rowWaiting:
		return fmt.Sprintf("  %-24s [%s]       waiting", r.label, strings.Repeat(" ", barWidth))
	case rowFailed:
		return fmt.Sprintf("  %-24s FAILED: %v", r.label, r.err)
	case rowCached:
		return fmt.Sprintf("  %-24s [%s] %3d/%-3d cached", r.label, strings.Repeat("#", barWidth), r.done, r.total)
	}
	filled := 0
	if r.total > 0 {
		filled = r.done * barWidth / r.total
	} else if r.state == rowDone {
		filled = barWidth
	}
	bar := strings.Repeat("#", filled) + strings.Repeat("-", barWidth-filled)
	suffix := ""
	if r.state == rowDone {
		suffix = " done"
	}
	return fmt.Sprintf("  %-24s [%s] %3d/%-3d%s", r.label, bar, r.done, r.total, suffix)
}
