// The -diff mode: semantic comparison of two findings exports, with
// exit-code gating for CI (see docs/FINDINGS.md).

package main

import (
	"fmt"
	"io"

	"repro/internal/core/findings"
)

// runDiff loads two findings files, diffs them semantically, and
// renders the drift. The exit code is 0 for an ungated (or drift-free)
// diff, 1 when a class named by -diff-fail-on is non-empty, and 2 for
// unreadable inputs or a malformed gate spec.
func runDiff(oldPath, newPath, failOn string, stdout, stderr io.Writer) int {
	gate, err := findings.ParseFailOn(failOn)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	old, err := findings.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	new, err := findings.ReadFile(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	d := findings.DiffReports(old, new)
	d.Render(stdout)
	if d.Fails(gate) {
		fmt.Fprintf(stderr, "eptest: findings gate (-diff-fail-on %s) tripped\n", failOn)
		return 1
	}
	return 0
}
