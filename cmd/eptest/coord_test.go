package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core/coord"
)

// startCoordServer launches `eptest -serve-coord` on an ephemeral port
// in-process — short lease so abandoned claims requeue within the
// test's patience — and returns its base URL.
func startCoordServer(t *testing.T, dir string, extra ...string) string {
	t.Helper()
	var out, errb syncBuffer
	args := append([]string{"-serve-coord", "127.0.0.1:0", "-cache", dir, "-lease", "300ms"}, extra...)
	go run(args, &out, &errb)
	re := regexp.MustCompile(`listening on ([0-9.:]+) `)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1]
		}
		if s := errb.String(); s != "" {
			t.Fatalf("coordinator failed to start: %s", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("coordinator never announced its address; stdout %q", out.String())
	return ""
}

// TestCoordElasticFlow is the CLI acceptance test for the distributed
// coordinator — the ISSUE 5 criterion: one of two workers dies
// mid-run (here: a raw client that claims jobs and goes silent,
// exactly the state SIGKILL leaves), the surviving `-coord-url` worker
// drains the queue through lease-expiry requeues, and the merged
// report the coordinator assembles is byte-identical to a
// single-process `eptest -all` over the same slice. A second
// coordinator generation over the same store then replays everything
// source-level from the shared cache.
func TestCoordElasticFlow(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	const token = "s3cret"
	url := startCoordServer(t, dir, "-filter", "lpr*", "-auth-token", token)

	var full, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "4", "-filter", "lpr*"}, &full, &errb); code != 0 {
		t.Fatalf("-all exit = %d, stderr = %s", code, errb.String())
	}

	// The doomed worker: registers, claims two jobs, never completes
	// or renews. Its leases expire and requeue.
	doomed, err := coord.Dial(url, coord.WithToken(token))
	if err != nil {
		t.Fatal(err)
	}
	catalog := []string{"lpr/vulnerable", "lpr/fixed", "lpr-create-site/vulnerable", "lpr-create-site/fixed"}
	if err := doomed.Register("doomed", catalog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, status, err := doomed.Claim(); err != nil || status != coord.ClaimGranted {
			t.Fatalf("doomed claim = (%v, %v)", status, err)
		}
	}

	// The survivor drains everything, including the requeued jobs.
	var worker, werr bytes.Buffer
	code := run([]string{"-all", "-j", "4", "-filter", "lpr*",
		"-coord-url", url, "-worker", "survivor", "-auth-token", token}, &worker, &werr)
	if code != 0 {
		t.Fatalf("worker exit = %d, stderr = %s", code, werr.String())
	}
	wout := worker.String()
	if !strings.Contains(wout, "coordinator: 4 job(s) — 4 done") {
		t.Errorf("worker coordinator section:\n%s", wout)
	}
	if !strings.Contains(wout, "2 requeue(s) after lease expiry") {
		t.Errorf("worker output does not show the doomed worker's requeues:\n%s", wout)
	}

	// The coordinator writes the merged artifact asynchronously on
	// drain; wait for it, then demand byte-identity with -all.
	artifact := filepath.Join(dir, "shards", "shard-1-of-1.json")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(artifact); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never wrote the merged artifact")
		}
		time.Sleep(20 * time.Millisecond)
	}
	var merged, merr bytes.Buffer
	if code := run([]string{"-merge", dir}, &merged, &merr); code != 0 {
		t.Fatalf("-merge exit = %d, stderr = %s", code, merr.String())
	}
	got := merged.String()
	i := strings.Index(got, "merged from")
	if i < 0 {
		t.Fatalf("merge output missing the merged-shard section:\n%s", got)
	}
	if want := full.String(); strings.TrimSuffix(got[:i], "\n") != want {
		t.Errorf("merged coordinator report differs from -all:\n--- all ---\n%s\n--- merged ---\n%s", want, got[:i])
	}

	// Restart semantics first: a second coordinator over the same
	// store resumes the drained queue from its journal instead of
	// re-opening it.
	var resumedOut, resumedErr syncBuffer
	go run([]string{"-serve-coord", "127.0.0.1:0", "-cache", dir, "-lease", "300ms",
		"-filter", "lpr*", "-auth-token", token}, &resumedOut, &resumedErr)
	rdl := time.Now().Add(5 * time.Second)
	for !strings.Contains(resumedOut.String(), "resumed from journal") {
		if time.Now().After(rdl) {
			t.Fatalf("restarted coordinator did not resume from journal; stdout %q stderr %q",
				resumedOut.String(), resumedErr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(resumedOut.String(), "4 done, 0 claimed, 0 pending of 4 jobs") {
		t.Errorf("resumed coordinator state:\n%s", resumedOut.String())
	}

	// Elastic second generation: the queue is durable now, so starting
	// a genuinely fresh generation means retiring the old journal.
	// With it gone, every campaign replays source-level from the
	// shared cache the first generation populated.
	if err := os.Remove(filepath.Join(dir, "coord", "journal.jsonl")); err != nil {
		t.Fatal(err)
	}
	url2 := startCoordServer(t, dir, "-filter", "lpr*", "-auth-token", token)
	var warm bytes.Buffer
	if code := run([]string{"-all", "-j", "4", "-filter", "lpr*",
		"-coord-url", url2, "-worker", "warm", "-auth-token", token}, &warm, &werr); code != 0 {
		t.Fatalf("warm worker exit = %d, stderr = %s", code, werr.String())
	}
	if !strings.Contains(warm.String(), "result cache: 4/4 campaigns replayed (100.0% hits)") {
		t.Errorf("warm worker cache section:\n%s", warm.String())
	}
	if !strings.Contains(warm.String(), "source-fingerprint hit") {
		t.Errorf("warm worker replays were not source-level:\n%s", warm.String())
	}
	if suiteReport(warm.String()) != suiteReport(worker.String()) {
		t.Error("suite report differs between cold and warm coordinator runs")
	}
}

// TestCoordWorkerRejectsWrongToken pins the auth failure mode: a
// worker with the wrong bearer token is refused at register time with
// the 401, before any work happens.
func TestCoordWorkerRejectsWrongToken(t *testing.T) {
	t.Parallel()
	url := startCoordServer(t, t.TempDir(), "-filter", "lpr*", "-auth-token", "right")
	var out, errb bytes.Buffer
	code := run([]string{"-all", "-filter", "lpr*", "-coord-url", url, "-auth-token", "wrong"}, &out, &errb)
	if code != 2 {
		t.Fatalf("wrong-token worker exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "401") {
		t.Errorf("stderr does not surface the 401: %s", errb.String())
	}
}

// TestCoordFlagValidation pins the flag-combination errors around the
// coordinator, auth, and bench-json flags.
func TestCoordFlagValidation(t *testing.T) {
	t.Parallel()
	cases := map[string]struct {
		args []string
		want string
	}{
		"serve-coord without store": {[]string{"-serve-coord", ":0"}, "needs -cache DIR"},
		"serve-coord with all":      {[]string{"-serve-coord", ":0", "-cache", "d", "-all"}, "-serve-coord runs alone"},
		"serve-coord with serve":    {[]string{"-serve-coord", ":0", "-cache", "d", "-serve-cache", ":0"}, "-serve-coord runs alone"},
		"serve-coord bad lease":     {[]string{"-serve-coord", ":0", "-cache", "d", "-lease", "0s"}, "not a lease TTL"},
		"lease without serve-coord": {[]string{"-all", "-coord-url", "http://x", "-lease", "10s"}, "needs -serve-coord"},
		"coord-url without all":     {[]string{"-coord-url", "http://x"}, "require -all"},
		"coord-url with cache":      {[]string{"-all", "-coord-url", "http://x", "-cache", "d"}, "replaces -cache"},
		"coord-url with shard":      {[]string{"-all", "-coord-url", "http://x", "-shard", "1/2"}, "replaces -cache"},
		"coord-url malformed":       {[]string{"-all", "-coord-url", "10.0.0.7:7077"}, "coordinator URL"},
		"worker without coord":      {[]string{"-all", "-worker", "w"}, "needs -coord-url"},
		"auth-token alone":          {[]string{"-all", "-auth-token", "t"}, "does nothing"},
		"bench-json without all":    {[]string{"-bench-json", "f.json"}, "require -all"},
	}
	for name, tc := range cases {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != 2 {
			t.Errorf("%s: exit = %d, want 2 (stderr %q)", name, code, errb.String())
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("%s: stderr %q missing %q", name, errb.String(), tc.want)
		}
	}
}

// TestBenchJSON pins the machine-readable perf record: a suite run
// with -bench-json writes a parseable file whose counters agree with
// the run.
func TestBenchJSON(t *testing.T) {
	t.Parallel()
	file := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	code := run([]string{"-all", "-j", "2", "-filter", "lpr-create-site*", "-bench-json", file}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote benchmark stats to "+file) {
		t.Errorf("stdout does not announce the bench file:\n%s", out.String())
	}
	b, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var bs struct {
		Schema      string  `json:"schema"`
		Catalog     string  `json:"catalog"`
		Filter      string  `json:"filter"`
		Jobs        int     `json:"jobs"`
		CatalogJobs int     `json:"catalog_jobs"`
		RunsTotal   int     `json:"runs_total"`
		RunsExec    int     `json:"runs_executed"`
		WallMillis  float64 `json:"wall_ms"`
		RunsPerSec  float64 `json:"runs_per_sec"`
		Workers     int     `json:"workers"`
	}
	if err := json.Unmarshal(b, &bs); err != nil {
		t.Fatalf("bench file does not parse: %v\n%s", err, b)
	}
	if bs.Schema != "eptest-bench/1" || bs.Catalog != "base" || bs.Filter != "lpr-create-site*" {
		t.Errorf("bench header = %+v", bs)
	}
	if bs.Jobs != 2 || bs.CatalogJobs != 2 || bs.Workers != 2 {
		t.Errorf("bench shape = %+v, want 2 jobs / 2 workers", bs)
	}
	if bs.RunsTotal <= 0 || bs.RunsExec != bs.RunsTotal || bs.WallMillis <= 0 || bs.RunsPerSec <= 0 {
		t.Errorf("bench counters = %+v, want positive cold-run throughput", bs)
	}
}
