package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core/coord"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

// TestMain lets a test re-exec this binary as a real eptest process:
// with the subprocess marker set, the binary runs the CLI instead of
// the test suite — the only way to SIGKILL a coordinator mid-campaign
// and watch a genuinely new process recover its journal.
func TestMain(m *testing.M) {
	if os.Getenv("EPTEST_COORD_SUBPROCESS") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestCoordRestartResumesMidCampaign is the durability acceptance test
// — the ISSUE 9 criterion: a coordinator SIGKILLed mid-campaign (two
// jobs completed, two open) restarts against the same store, resumes
// from its journal instead of reopening finished work, a worker drains
// the remainder, and the merged report is byte-identical to a
// single-process `eptest -all` over the same slice.
func TestCoordRestartResumesMidCampaign(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	var full, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "4", "-filter", "lpr*"}, &full, &errb); code != 0 {
		t.Fatalf("-all exit = %d, stderr = %s", code, errb.String())
	}

	// Generation one: a real OS process, so SIGKILL means SIGKILL.
	var out, errOut syncBuffer
	cmd := exec.Command(os.Args[0], "-serve-coord", "127.0.0.1:0", "-cache", dir,
		"-filter", "lpr*", "-lease", "300ms")
	cmd.Env = append(os.Environ(), "EPTEST_COORD_SUBPROCESS=1")
	cmd.Stdout = &out
	cmd.Stderr = &errOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	re := regexp.MustCompile(`listening on ([0-9.:]+) `)
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			url = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator subprocess never announced its address; stdout %q stderr %q", out.String(), errOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if strings.Contains(out.String(), "resumed from journal") {
		t.Fatalf("fresh coordinator claims to have resumed:\n%s", out.String())
	}

	// Half the campaign lands before the kill: a raw client claims jobs
	// 0 and 1 and completes them with the real campaign results, which
	// the coordinator journals (and fsyncs) before acknowledging.
	jobs, catalog, err := suiteCatalog(false, "lpr*")
	if err != nil {
		t.Fatal(err)
	}
	ref := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4})
	cl, err := coord.Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("head", catalog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		idx, status, err := cl.Claim()
		if err != nil || status != coord.ClaimGranted || idx != i {
			t.Fatalf("claim %d = (%d, %v, %v)", i, idx, status, err)
		}
		b, err := store.EncodeResult(ref.Campaigns[idx].Result)
		if err != nil {
			t.Fatal(err)
		}
		name, variant, _ := strings.Cut(catalog[idx], "/")
		if dup, err := cl.Complete(idx, coord.Outcome{Name: name, Variant: variant, Result: b}); err != nil || dup {
			t.Fatalf("complete %d = (dup %v, %v)", idx, dup, err)
		}
	}

	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Generation two resumes over the same store: two jobs done from
	// the journal, two pending, and it says so.
	var out2, err2 syncBuffer
	go run([]string{"-serve-coord", "127.0.0.1:0", "-cache", dir, "-lease", "300ms",
		"-filter", "lpr*"}, &out2, &err2)
	deadline = time.Now().Add(5 * time.Second)
	var url2 string
	for url2 == "" {
		if m := re.FindStringSubmatch(out2.String()); m != nil {
			url2 = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted coordinator never announced its address; stdout %q stderr %q", out2.String(), err2.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(out2.String(), "resumed from journal — 2 done, 0 claimed, 2 pending of 4 jobs") {
		t.Fatalf("restarted coordinator did not resume mid-campaign:\n%s", out2.String())
	}

	// A worker drains the two open jobs and the coordinator assembles
	// the full merged artifact — half pre-kill, half post-restart.
	var worker, werr bytes.Buffer
	if code := run([]string{"-all", "-j", "4", "-filter", "lpr*",
		"-coord-url", url2, "-worker", "finisher"}, &worker, &werr); code != 0 {
		t.Fatalf("worker exit = %d, stderr = %s", code, werr.String())
	}
	if !strings.Contains(worker.String(), "coordinator: 4 job(s) — 4 done") {
		t.Errorf("worker coordinator section:\n%s", worker.String())
	}

	artifact := filepath.Join(dir, "shards", "shard-1-of-1.json")
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(artifact); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted coordinator never wrote the merged artifact")
		}
		time.Sleep(20 * time.Millisecond)
	}
	var merged, merr bytes.Buffer
	if code := run([]string{"-merge", dir}, &merged, &merr); code != 0 {
		t.Fatalf("-merge exit = %d, stderr = %s", code, merr.String())
	}
	got := merged.String()
	i := strings.Index(got, "merged from")
	if i < 0 {
		t.Fatalf("merge output missing the merged-shard section:\n%s", got)
	}
	if want := full.String(); strings.TrimSuffix(got[:i], "\n") != want {
		t.Errorf("report after kill+restart differs from -all:\n--- all ---\n%s\n--- merged ---\n%s", want, got[:i])
	}
}
