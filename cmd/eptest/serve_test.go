package main

import (
	"bytes"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe for the server goroutine to write
// while the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startCacheServer launches `eptest -serve-cache` on an ephemeral port
// in-process and returns its base URL. The server goroutine lives for
// the rest of the test binary — acceptable for a test, and exactly the
// run-until-killed lifecycle the real command has.
func startCacheServer(t *testing.T, dir string) string {
	t.Helper()
	var out, errb syncBuffer
	go run([]string{"-serve-cache", "127.0.0.1:0", "-cache", dir}, &out, &errb)
	re := regexp.MustCompile(`listening on ([0-9.:]+) `)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1]
		}
		if s := errb.String(); s != "" {
			t.Fatalf("server failed to start: %s", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never announced its address; stdout %q", out.String())
	return ""
}

// TestServeCacheDistributedFlow is the CLI acceptance test for the
// HTTP transport: a cache server fronts one store directory, two shard
// workers run against it over -cache-url, and -merge on the server's
// directory reproduces the unsharded -all report byte for byte. A
// re-run of one worker then replays 100% from the shared cache.
func TestServeCacheDistributedFlow(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	url := startCacheServer(t, dir)

	// The server answers the liveness probe the CI job uses.
	resp, err := http.Get(url + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/meta = %s", resp.Status)
	}

	var full, s1, s2, merged, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "4"}, &full, &errb); code != 0 {
		t.Fatalf("-all exit = %d, stderr = %s", code, errb.String())
	}
	if code := run([]string{"-all", "-j", "4", "-shard", "1/2", "-cache-url", url}, &s1, &errb); code != 0 {
		t.Fatalf("shard 1/2 exit = %d, stderr = %s", code, errb.String())
	}
	if code := run([]string{"-all", "-j", "4", "-shard", "2/2", "-cache-url", url}, &s2, &errb); code != 0 {
		t.Fatalf("shard 2/2 exit = %d, stderr = %s", code, errb.String())
	}
	for _, out := range []*bytes.Buffer{&s1, &s2} {
		if want := fmt.Sprintf("wrote 10 job(s) to %s", url); !strings.Contains(out.String(), want) {
			t.Errorf("shard output missing %q:\n%s", want, out.String())
		}
	}

	if code := run([]string{"-merge", dir}, &merged, &errb); code != 0 {
		t.Fatalf("-merge exit = %d, stderr = %s", code, errb.String())
	}
	got := merged.String()
	i := strings.Index(got, "merged from")
	if i < 0 {
		t.Fatalf("merge output missing the merged-shard section:\n%s", got)
	}
	if !strings.Contains(got[i:], "2 shard artifact(s), 20 jobs") {
		t.Errorf("merged-shard section:\n%s", got[i:])
	}
	if want := full.String(); strings.TrimSuffix(got[:i], "\n") != want {
		t.Errorf("merged report differs from -all:\n--- all ---\n%s\n--- merged ---\n%s", want, got[:i])
	}

	// The cache is shared: re-running a worker replays everything,
	// source-level, without re-executing even the clean runs.
	var warm bytes.Buffer
	if code := run([]string{"-all", "-j", "4", "-shard", "1/2", "-cache-url", url}, &warm, &errb); code != 0 {
		t.Fatalf("warm shard exit = %d, stderr = %s", code, errb.String())
	}
	if !strings.Contains(warm.String(), "result cache: 10/10 campaigns replayed (100.0% hits)") {
		t.Errorf("warm shard cache section:\n%s", warm.String())
	}
	if !strings.Contains(warm.String(), "source-fingerprint hit") {
		t.Errorf("warm shard replays were not source-level:\n%s", warm.String())
	}
	if suiteReport(warm.String()) != suiteReport(s1.String()) {
		t.Error("suite report differs between cold and warm shard runs")
	}
}

// TestServeCacheFlagValidation pins the new flag-combination and
// input-validation errors.
func TestServeCacheFlagValidation(t *testing.T) {
	t.Parallel()
	cases := map[string]struct {
		args []string
		want string
	}{
		"j zero":                 {[]string{"-all", "-j", "0"}, "-j 0 is not a worker count"},
		"j negative":             {[]string{"-campaign", "turnin", "-j", "-3"}, "-j -3 is not a worker count"},
		"serve with shard":       {[]string{"-serve-cache", ":0", "-cache", "d", "-shard", "1/2"}, "-serve-cache runs alone"},
		"serve with all":         {[]string{"-serve-cache", ":0", "-cache", "d", "-all"}, "-serve-cache runs alone"},
		"serve with cache-url":   {[]string{"-serve-cache", ":0", "-cache", "d", "-cache-url", "http://x"}, "-serve-cache runs alone"},
		"serve without store":    {[]string{"-serve-cache", ":0"}, "needs -cache DIR"},
		"cache-url without all":  {[]string{"-cache-url", "http://x"}, "require -all"},
		"cache-url with cache":   {[]string{"-all", "-cache-url", "http://x", "-cache", "d"}, "exactly one"},
		"cache-url malformed":    {[]string{"-all", "-cache-url", "10.0.0.7:7077"}, "cache URL \"10.0.0.7:7077\""},
		"cache-url empty host":   {[]string{"-all", "-cache-url", "http://"}, "must be absolute http(s)"},
		"cache-url wrong scheme": {[]string{"-all", "-cache-url", "ftp://host"}, "must be absolute http(s)"},
		"merge with cache-url":   {[]string{"-merge", "d", "-cache-url", "http://x"}, "-merge runs alone"},
		"shard needs some cache": {[]string{"-all", "-shard", "1/2"}, "-shard needs -cache DIR or -cache-url"},
	}
	for name, tc := range cases {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != 2 {
			t.Errorf("%s: exit = %d, want 2 (stderr %q)", name, code, errb.String())
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("%s: stderr %q missing %q", name, errb.String(), tc.want)
		}
	}
}
