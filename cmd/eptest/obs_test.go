package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core/coord"
	"repro/internal/core/findings"
	"repro/internal/core/obs"
)

func TestTelemetryFlagValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-trace", "t.json", "-campaign", "turnin"}, "require -all"},
		{[]string{"-metrics-json", "m.json", "-list"}, "require -all"},
		{[]string{"-pprof", "localhost:0", "-campaign", "turnin"}, "-all, -serve-cache or -serve-coord"},
		{[]string{"-pprof", "localhost:0", "-merge", "d"}, "-all, -serve-cache or -serve-coord"},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", tc.args, code)
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("run(%v) stderr = %q, want %q", tc.args, errb.String(), tc.want)
		}
	}
}

// TestTelemetryLeavesReportUnchanged runs the same suite slice with and
// without every telemetry flag; the report on stdout must stay
// byte-identical (the flags only append their own "wrote ..." trailer
// lines), and the trace and metrics files must parse as their schemas.
func TestTelemetryLeavesReportUnchanged(t *testing.T) {
	t.Parallel()
	var plain, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "4", "-filter", "turnin*"}, &plain, &errb); code != 0 {
		t.Fatalf("plain exit = %d, stderr = %s", code, errb.String())
	}

	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.json")
	metricsFile := filepath.Join(dir, "metrics.json")
	findingsFile := filepath.Join(dir, "findings.json")
	var obsOut, obsErr bytes.Buffer
	code := run([]string{
		"-all", "-j", "4", "-filter", "turnin*",
		"-trace", traceFile, "-metrics-json", metricsFile, "-findings", findingsFile, "-pprof", "127.0.0.1:0",
	}, &obsOut, &obsErr)
	if code != 0 {
		t.Fatalf("telemetry exit = %d, stderr = %s", code, obsErr.String())
	}
	if !strings.Contains(obsErr.String(), "pprof listening on") {
		t.Errorf("stderr missing pprof banner: %q", obsErr.String())
	}

	rest, found := strings.CutPrefix(obsOut.String(), plain.String())
	if !found {
		t.Fatalf("telemetry run's report diverges from the plain run:\n--- plain ---\n%s\n--- telemetry ---\n%s",
			plain.String(), obsOut.String())
	}
	for _, want := range []string{"wrote trace (", "wrote metrics snapshot to", "finding record(s) to"} {
		if !strings.Contains(rest, want) {
			t.Errorf("trailer missing %q: %q", want, rest)
		}
	}

	// The findings export decodes under its schema and carries records —
	// the turnin suite has known violations.
	frep, err := findings.ReadFile(findingsFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(frep.Findings) == 0 {
		t.Error("findings export is empty for the turnin slice")
	}

	// The trace file is a valid Chrome trace_event array with run spans
	// and the process-name metadata.
	tb, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(tb, &events); err != nil {
		t.Fatalf("trace file does not decode: %v", err)
	}
	var runSpans, procMeta int
	for _, ev := range events {
		if ev.Ph == "X" && ev.Cat == "run" {
			runSpans++
		}
		if ev.Ph == "M" && ev.Name == "process_name" {
			procMeta++
		}
	}
	if runSpans == 0 || procMeta == 0 {
		t.Errorf("trace has %d run spans and %d process_name records, want both > 0", runSpans, procMeta)
	}

	// The metrics dump is an eptest-metrics/1 snapshot counting the
	// executed runs.
	mb, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Schema  string `json:"schema"`
		Metrics []struct {
			Name  string `json:"name"`
			Value *int64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatalf("metrics file does not decode: %v", err)
	}
	if snap.Schema != obs.MetricsSchemaVersion {
		t.Errorf("metrics schema = %q, want %q", snap.Schema, obs.MetricsSchemaVersion)
	}
	var runs int64
	for _, m := range snap.Metrics {
		if m.Name == "eptest_runs_executed_total" && m.Value != nil {
			runs = *m.Value
		}
	}
	if runs == 0 {
		t.Errorf("metrics snapshot reports 0 executed runs:\n%s", mb)
	}
}

// get fetches path from the coordinator with the bearer token and
// returns status code, content type and body.
func get(t *testing.T, url, path, token string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestCoordObservabilitySurface drives a real coordinator + worker and
// checks the three live endpoints the CI smoke also curls: /metrics
// (Prometheus text, behind the bearer token), /v1/status (JSON
// snapshot) and /status (HTML page).
func TestCoordObservabilitySurface(t *testing.T) {
	t.Parallel()
	const token = "s3cret"
	url := startCoordServer(t, t.TempDir(), "-filter", "lpr-create-site*", "-auth-token", token)

	if code, _, _ := get(t, url, "/metrics", ""); code != http.StatusUnauthorized {
		t.Errorf("unauthenticated /metrics = %d, want 401", code)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "4", "-filter", "lpr-create-site*",
		"-coord-url", url, "-worker", "probe", "-auth-token", token}, &out, &errb); code != 0 {
		t.Fatalf("worker exit = %d, stderr = %s", code, errb.String())
	}

	code, ct, body := get(t, url, "/metrics", token)
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics = %d %q", code, ct)
	}
	for _, want := range []string{
		"# TYPE eptest_coord_jobs gauge",
		`eptest_coord_jobs{phase="done"} 2`,
		`eptest_coord_completions_total{result="recorded"} 2`,
		"# TYPE eptest_http_requests_total counter",
		"# TYPE eptest_store_entries_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, ct, body = get(t, url, "/v1/status", token)
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("/v1/status = %d %q", code, ct)
	}
	var st coord.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/v1/status does not decode: %v", err)
	}
	if st.Schema != coord.StatusSchemaVersion || !st.Drained || st.Done != 2 || len(st.Workers) != 1 {
		t.Errorf("status = %+v, want drained 2-job queue with 1 worker", st)
	}
	if st.Workers[0].Name != "probe" || st.Workers[0].RunsDone == 0 {
		t.Errorf("worker status = %+v, want probe with runs recorded", st.Workers[0])
	}

	code, ct, body = get(t, url, "/status", token)
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("/status = %d %q", code, ct)
	}
	for _, want := range []string{"eptest coordinator", "probe", "(drained)"} {
		if !strings.Contains(body, want) {
			t.Errorf("/status page missing %q", want)
		}
	}

	// The findings surface sits behind the same bearer token and serves
	// the canonical findings encoding; lpr-create-site's vulnerable
	// variant is a known violator, so the report is non-empty.
	if code, _, _ := get(t, url, "/v1/findings", ""); code != http.StatusUnauthorized {
		t.Errorf("unauthenticated /v1/findings = %d, want 401", code)
	}
	code, ct, body = get(t, url, "/v1/findings", token)
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("/v1/findings = %d %q", code, ct)
	}
	frep, err := findings.Decode([]byte(body))
	if err != nil {
		t.Fatalf("/v1/findings does not decode: %v", err)
	}
	if len(frep.Findings) == 0 {
		t.Error("/v1/findings is empty after a drained violating run")
	}
}

// TestBenchJSONFoldsMetrics checks the bench record carries the flat
// metrics map alongside the existing throughput fields.
func TestBenchJSONFoldsMetrics(t *testing.T) {
	t.Parallel()
	bench := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "2", "-filter", "turnin*", "-bench-json", bench}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	b, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var bs benchStats
	if err := json.Unmarshal(b, &bs); err != nil {
		t.Fatal(err)
	}
	if bs.Schema != benchSchemaVersion {
		t.Errorf("schema = %q", bs.Schema)
	}
	if bs.Metrics["eptest_runs_executed_total"] == 0 {
		t.Errorf("bench metrics missing executed runs: %v", bs.Metrics)
	}
	// The per-phase latency split rides in the same flat map, one
	// histogram series per phase, counting every executed run.
	runs := bs.Metrics["eptest_runs_executed_total"]
	for _, ph := range []string{"world", "exec", "compare"} {
		key := `eptest_run_phase_seconds_count{phase="` + ph + `"}`
		if bs.Metrics[key] != runs {
			t.Errorf("%s = %v, want %v (one observation per run)", key, bs.Metrics[key], runs)
		}
	}
	// Host provenance and the allocation rate are stamped by the
	// writing binary.
	if bs.GOOS == "" || bs.GOARCH == "" || bs.CPUs <= 0 || !strings.HasPrefix(bs.GoVersion, "go") {
		t.Errorf("host provenance incomplete: goos=%q goarch=%q cpus=%d go=%q", bs.GOOS, bs.GOARCH, bs.CPUs, bs.GoVersion)
	}
	if bs.AllocsPerRun <= 0 {
		t.Errorf("allocs_per_run = %v, want > 0", bs.AllocsPerRun)
	}
}
