package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/apps"
	"repro/internal/apps/matrix"
	"repro/internal/core/coord"
	"repro/internal/core/obs"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

// workerDisplayName resolves the name a -coord-url worker registers
// under: the -worker flag, or host-pid so two workers on one machine
// stay distinguishable in the coordinator report.
func workerDisplayName(flagName string) string {
	if flagName != "" {
		return flagName
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// suiteCatalog builds the suite's job list and label catalog from the
// -matrix/-filter flags. It is THE catalog definition: runSuite runs
// it, runServeCoord serves it, and workers must derive the identical
// list for their registrations to be accepted — which is why there is
// exactly one implementation.
func suiteCatalog(useMatrix bool, filter string) ([]sched.Job, []string, error) {
	jobs := apps.SuiteJobs()
	if useMatrix {
		jobs = matrix.SuiteJobs()
	}
	if filter != "" {
		jobs = sched.FilterJobs(jobs, filter)
		if len(jobs) == 0 {
			return nil, nil, fmt.Errorf("-filter %q selects zero jobs; try a broader glob (see -list, or -matrix labels like \"lpr/vulnerable+nodedup\")", filter)
		}
	}
	catalog := make([]string, len(jobs))
	for i, j := range jobs {
		catalog[i] = j.Label()
	}
	return jobs, catalog, nil
}

// coordJournalPath locates the coordinator's durable-state journal
// inside a store directory.
func coordJournalPath(storeDir string) string {
	return filepath.Join(storeDir, "coord", "journal.jsonl")
}

// runServeCoord serves the campaign coordinator and the result store
// on one listener until the process is terminated: workers dial a
// single -coord-url for claims, leases, completions, AND the shared
// cache. When the queue drains, the merged suite result is written to
// the store as a 1-of-1 shard artifact, so `eptest -merge DIR` renders
// the exact report a single-process run would have printed — the
// coordinator keeps serving afterwards for late duplicate completions,
// campaign submissions, and state queries.
//
// The queue is durable: every claim, renewal, and completion is
// journaled under <store>/coord/, and a restarted coordinator folds
// the journal back — completed work stays completed (results
// cache-resident in the same store), in-flight leases requeue when
// their original deadlines pass, and the fleet rides out the restart
// through its usual failure tolerance. The journal binds to the
// catalog it was written for, so a restart must use the same
// -matrix/-filter flags.
//
// The same listener carries the campaign submission API (POST/GET
// /v1/campaigns, sharing the path space with the cache transport's
// fingerprint routes) and the observability surface: GET /v1/status
// (live queue snapshot as JSON), GET /v1/findings (the canonical
// findings report over completions so far), GET /status
// (self-refreshing HTML page over the same snapshot), and GET /metrics
// (Prometheus text for the queue, store and HTTP metrics) — all
// behind the bearer token.
func runServeCoord(addr, dir string, useMatrix bool, filter string, lease, retention time.Duration, token, pprofAddr string, stdout, stderr io.Writer) int {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	_, catalog, err := suiteCatalog(useMatrix, filter)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	reg := obs.NewRegistry()
	if !startPprof(pprofAddr, reg, stdout, stderr) {
		return 2
	}
	journal, recs, err := coord.OpenFileJournal(coordJournalPath(st.Dir()))
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	co, err := coord.Restore(catalog, coord.Options{
		LeaseTTL:  lease,
		Metrics:   reg,
		Journal:   journal,
		Results:   st,
		Retention: retention,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "eptest: "+format+"\n", args...)
		},
	}, recs)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}

	// Each subtree is wrapped in the HTTP middleware exactly once — the
	// coordinator protocol here, the campaign API inside CampaignAPI,
	// the store routes inside NewServer — so a request increments
	// eptest_http_requests_total exactly once. The metrics and status
	// endpoints themselves stay unwrapped: scrapes and page refreshes
	// should not drown the traffic they report on.
	mux := http.NewServeMux()
	mux.Handle(coord.Prefix, obs.Middleware(reg, coord.NewServer(co)))
	storeSrv := store.NewServer(st, store.WithServerMetrics(reg))
	campaigns := coord.CampaignAPI(co, storeSrv, reg)
	mux.Handle("/v1/campaigns", campaigns)
	mux.Handle("/v1/campaigns/", campaigns)
	mux.Handle("GET /v1/status", coord.StatusHandler(co))
	mux.Handle("GET /v1/findings", coord.FindingsHandler(co))
	mux.Handle("GET /status", coord.StatusPage(co))
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("/", storeSrv)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: -serve-coord %s: %v\n", addr, err)
		return 2
	}
	fmt.Fprintf(stdout, "eptest: coordinator listening on %s (%d jobs, lease %s, store %s)\n",
		ln.Addr(), len(catalog), lease, st.Dir())
	if co.Resumed() {
		rst := co.Stats()
		fmt.Fprintf(stdout, "eptest: resumed from journal — %d done, %d claimed, %d pending of %d jobs\n",
			rst.Done, rst.Claimed, rst.Pending, rst.Jobs)
	}

	go func() {
		<-co.Drained()
		sr, err := co.SuiteResult()
		if err != nil {
			fmt.Fprintf(stderr, "eptest: coordinator drained but could not assemble the suite result: %v\n", err)
			return
		}
		indices := make([]int, len(catalog))
		for i := range indices {
			indices[i] = i
		}
		if err := st.WriteShard(sched.ShardSpec{K: 1, N: 1}, catalog, indices, sr); err != nil {
			fmt.Fprintf(stderr, "eptest: coordinator drained but could not write the merged artifact: %v\n", err)
			return
		}
		fmt.Fprintf(stdout, "eptest: queue drained (%d jobs); merged artifact written — render it with `eptest -merge %s%s`\n",
			len(catalog), st.Dir(), matrixHint(useMatrix))
	}()

	if err := http.Serve(ln, store.BearerAuth(token, mux)); err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 1
	}
	return 0
}

// matrixHint renders the -matrix suffix for the drain message's merge
// command line.
func matrixHint(useMatrix bool) string {
	if useMatrix {
		return " -matrix"
	}
	return ""
}
