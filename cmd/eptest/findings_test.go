package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core/findings"
)

// exportFindings runs eptest with the given args plus -findings and
// returns the exported file's bytes.
func exportFindings(t *testing.T, dir, name string, args ...string) []byte {
	t.Helper()
	path := filepath.Join(dir, name)
	var out, errb bytes.Buffer
	code := run(append(args, "-findings", path), &out, &errb)
	if code != 0 && code != 1 {
		t.Fatalf("run(%v) exit = %d, stderr = %s", args, code, errb.String())
	}
	if !strings.Contains(out.String(), "finding record(s) to "+path) {
		t.Fatalf("stdout missing findings trailer:\n%s", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// goldenFindings compares an export against a committed golden file,
// honouring the shared -golden-update flag.
func goldenFindings(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *goldenUpdate {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -golden-update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("findings export drifted from golden %s.\nIf the change is deliberate, rerun with -golden-update and review the diff.\n--- got ---\n%s", path, got)
	}
}

// TestGoldenFindingsExport pins the canonical findings file for the
// base suite and a matrix slice: the eptest-findings/1 encoding is a
// published stability contract, so a single drifted byte must fail CI.
func TestGoldenFindingsExport(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	goldenFindings(t, "findings-base.json",
		exportFindings(t, dir, "base.json", "-all", "-j", "4"))
	goldenFindings(t, "findings-matrix-lpr.json",
		exportFindings(t, dir, "matrix.json", "-all", "-matrix", "-filter", "lpr/*", "-j", "4"))
}

// TestFindingsShardMergeIdentical shards a matrix slice across two
// cache-sharing workers and re-exports from -merge: the merged findings
// file must be byte-identical to the single-process export — the
// fleet-assembly invariant the differ depends on.
func TestFindingsShardMergeIdentical(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	full := exportFindings(t, dir, "full.json",
		"-all", "-matrix", "-filter", "lpr-create-site/*", "-j", "4")
	for _, shard := range []string{"1/2", "2/2"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-all", "-matrix", "-filter", "lpr-create-site/*", "-j", "4",
			"-shard", shard, "-cache", cache}, &out, &errb); code != 0 {
			t.Fatalf("shard %s: exit = %d, stderr = %s", shard, code, errb.String())
		}
	}
	merged := exportFindings(t, dir, "merged.json", "-merge", cache, "-matrix")
	if !bytes.Equal(merged, full) {
		t.Errorf("merged findings diverge from single-process export:\n--- merged ---\n%s--- full ---\n%s", merged, full)
	}
}

// TestFindingsWarmCacheIdentical re-exports through a warm result
// cache: replayed results must produce the same findings bytes as the
// cold run that populated the cache.
func TestFindingsWarmCacheIdentical(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	cold := exportFindings(t, dir, "cold.json",
		"-all", "-filter", "turnin*", "-j", "4", "-cache", cache)
	warm := exportFindings(t, dir, "warm.json",
		"-all", "-filter", "turnin*", "-j", "4", "-cache", cache)
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm-cache findings diverge from cold run:\n--- warm ---\n%s--- cold ---\n%s", warm, cold)
	}
}

// TestDiffCLI drives `eptest -diff` end to end: identical exports show
// zero drift and pass the gate; a synthesized new finding is reported
// and trips -diff-fail-on new with exit 1.
func TestDiffCLI(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	base := exportFindings(t, dir, "a.json", "-all", "-filter", "turnin*", "-j", "4")
	old := filepath.Join(dir, "a.json")
	cur := filepath.Join(dir, "b.json")
	if err := os.WriteFile(cur, base, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-diff", old, cur}, &out, &errb); code != 0 {
		t.Fatalf("identical diff exit = %d, stderr = %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no drift.") {
		t.Fatalf("identical diff output:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-diff", old, cur, "-diff-fail-on", "new"}, &out, &errb); code != 0 {
		t.Fatalf("gated identical diff exit = %d, stderr = %s", code, errb.String())
	}

	// Synthesize a new finding in the current file and watch the gate
	// trip.
	rep, err := findings.Decode(base)
	if err != nil {
		t.Fatal(err)
	}
	syn := rep.Findings[0]
	syn.ID = "EPT-ffffffffffffffff"
	syn.App = "synthetic"
	rep.Findings = append(rep.Findings, syn)
	sb, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, append(sb, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	code := run([]string{"-diff", old, cur, "-diff-fail-on", "new"}, &out, &errb)
	if code != 1 {
		t.Fatalf("gated drifting diff exit = %d, want 1 (stderr %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "EPT-ffffffffffffffff") || !strings.Contains(out.String(), "new ") {
		t.Errorf("diff output missing the synthesized finding:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "findings gate") {
		t.Errorf("stderr missing gate message: %q", errb.String())
	}
}

// TestFindingsFlagValidation pins the CLI contract around the new
// flags: -findings needs a suite or merge run, -diff rejects other
// modes and malformed gate specs.
func TestFindingsFlagValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-findings", "f.json", "-campaign", "turnin"}, "requires -all or -merge"},
		{[]string{"-findings", "f.json", "-list"}, "requires -all or -merge"},
		{[]string{"-diff-fail-on", "new", "-all"}, "needs -diff OLD NEW"},
		{[]string{"-diff", "old.json"}, "needs exactly one NEW findings file"},
		{[]string{"-diff", "old.json", "new.json", "-all"}, "-diff runs alone"},
		{[]string{"-diff", "old.json", "new.json", "-diff-fail-on", "bogus"}, "bogus"},
		{[]string{"-diff", "missing-old.json", "missing-new.json"}, "missing-old.json"},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2 (stderr %s)", tc.args, code, errb.String())
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("run(%v) stderr = %q, want %q", tc.args, errb.String(), tc.want)
		}
	}
}
