package main

import (
	"bytes"
	"strings"
	"testing"
)

// suiteReport returns the output up to (excluding) the result-cache
// section — the part of a -cache run that must be byte-identical
// between cold and warm runs.
func suiteReport(out string) string {
	if i := strings.Index(out, "result cache:"); i >= 0 {
		return out[:i]
	}
	return out
}

// TestCacheSecondRunFullHits is the CLI acceptance test for incremental
// suites: the same -all -cache invocation twice must report 0% then
// 100% hits, with a byte-identical suite report.
func TestCacheSecondRunFullHits(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var cold, warm, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "4", "-cache", dir}, &cold, &errb); code != 0 {
		t.Fatalf("cold exit = %d, stderr = %s", code, errb.String())
	}
	if code := run([]string{"-all", "-j", "4", "-cache", dir}, &warm, &errb); code != 0 {
		t.Fatalf("warm exit = %d, stderr = %s", code, errb.String())
	}
	if !strings.Contains(cold.String(), "result cache: 0/20 campaigns replayed (0.0% hits)") {
		t.Errorf("cold run cache section:\n%s", cold.String())
	}
	if !strings.Contains(warm.String(), "result cache: 20/20 campaigns replayed (100.0% hits)") {
		t.Errorf("warm run cache section:\n%s", warm.String())
	}
	if suiteReport(cold.String()) != suiteReport(warm.String()) {
		t.Error("suite report differs between cold and warm cache runs")
	}
}

// TestShardMergeMatchesAll is the CLI acceptance test for sharding: run
// the suite as two shards, merge, and demand the merged report equal an
// unsharded -all report byte for byte (up to the trailing merged-shard
// section).
func TestShardMergeMatchesAll(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var full, s1, s2, merged, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "4"}, &full, &errb); code != 0 {
		t.Fatalf("-all exit = %d, stderr = %s", code, errb.String())
	}
	if code := run([]string{"-all", "-j", "4", "-shard", "1/2", "-cache", dir}, &s1, &errb); code != 0 {
		t.Fatalf("shard 1/2 exit = %d, stderr = %s", code, errb.String())
	}
	if code := run([]string{"-all", "-j", "4", "-shard", "2/2", "-cache", dir}, &s2, &errb); code != 0 {
		t.Fatalf("shard 2/2 exit = %d, stderr = %s", code, errb.String())
	}
	for _, out := range []*bytes.Buffer{&s1, &s2} {
		if !strings.Contains(out.String(), "wrote 10 job(s)") {
			t.Errorf("shard output missing artifact confirmation:\n%s", out.String())
		}
	}
	if code := run([]string{"-merge", dir}, &merged, &errb); code != 0 {
		t.Fatalf("-merge exit = %d, stderr = %s", code, errb.String())
	}
	got := merged.String()
	i := strings.Index(got, "merged from")
	if i < 0 {
		t.Fatalf("merge output missing the merged-shard section:\n%s", got)
	}
	if !strings.Contains(got[i:], "2 shard artifact(s), 20 jobs") {
		t.Errorf("merged-shard section:\n%s", got[i:])
	}
	// Strip the section and its separating blank line.
	if want := full.String(); strings.TrimSuffix(got[:i], "\n") != want {
		t.Errorf("merged report differs from -all:\n--- all ---\n%s\n--- merged ---\n%s", want, got[:i])
	}
}

// TestMergeEmptyStoreFails pins the merge error path.
func TestMergeEmptyStoreFails(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run([]string{"-merge", t.TempDir()}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no shard artifacts") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// TestShardFlagValidation pins the flag-combination errors. The cache
// directory is a temp dir because the shard-spec errors are detected
// after the transport opens — a literal name would leave a stray store
// skeleton in the working tree.
func TestShardFlagValidation(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cases := map[string][]string{
		"shard without all":   {"-shard", "1/2", "-cache", dir},
		"cache without all":   {"-campaign", "turnin", "-cache", dir},
		"shard without cache": {"-all", "-shard", "1/2"},
		"malformed shard":     {"-all", "-shard", "2", "-cache", dir},
		"out-of-range shard":  {"-all", "-shard", "3/2", "-cache", dir},
		"merge with all":      {"-merge", dir, "-all"},
		"merge with cache":    {"-merge", dir, "-cache", dir},
		"merge with list":     {"-merge", dir, "-list"},
	}
	for name, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("%s: exit = %d, want 2 (stderr %q)", name, code, errb.String())
		}
	}
}
