package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestMatrixFlagRequiresAll mirrors the other suite-only flags.
func TestMatrixFlagRequiresAll(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{
		{"-matrix"},
		{"-filter", "lpr*"},
		{"-matrix", "-campaign", "lpr"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("%v: exit = %d, want 2", args, code)
		}
		if !strings.Contains(errb.String(), "require -all") {
			t.Errorf("%v: stderr = %q", args, errb.String())
		}
	}
}

// TestFilterZeroJobsRejected: a filter that selects nothing must be a
// loud error, not an empty report.
func TestFilterZeroJobsRejected(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	code := run([]string{"-all", "-filter", "no-such-app*"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stdout: %q)", code, out.String())
	}
	if !strings.Contains(errb.String(), "selects zero jobs") {
		t.Errorf("stderr = %q", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("an empty selection still printed a report:\n%s", out.String())
	}
}

// TestShardZeroJobsRejected: a filter/shard combination whose
// partition is empty must be rejected before any work runs.
func TestShardZeroJobsRejected(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	// lpr-create-site/fixed is a single job; shard 2/2 of a one-job
	// catalog owns nothing.
	code := run([]string{"-all", "-filter", "lpr-create-site/fixed", "-shard", "2/2", "-cache", t.TempDir()}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stdout: %q)", code, out.String())
	}
	if !strings.Contains(errb.String(), "selects zero jobs") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// TestMatrixSuiteSlice runs a narrow matrix slice end to end and
// checks the matrix-only report surface.
func TestMatrixSuiteSlice(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	code := run([]string{"-all", "-matrix", "-filter", "lpr-create-site/*", "-j", "4"}, &out, &errb)
	if code != 0 {
		// Suite exit reflects scheduling health, not violations.
		t.Fatalf("exit = %d, want 0, stderr = %s", code, errb.String())
	}
	for _, want := range []string{
		"lpr-create-site/vulnerable+nodedup",
		"lpr-create-site/fixed+late-direct",
		"matrix:",
		"by application:",
		"by engine option:",
		"by site cut:",
		"nodedup",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("matrix report missing %q:\n%s", want, out.String())
		}
	}
}

// TestMatrixShardMergeRoundTrip shards a matrix slice across two
// workers and merges with -matrix: the merged report, rollup
// included, must be byte-identical to the single-process run up to
// the trailing merged-shard section.
func TestMatrixShardMergeRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	var full, errb bytes.Buffer
	if code := run([]string{"-all", "-matrix", "-filter", "lpr-create-site/*", "-j", "4"}, &full, &errb); code != 0 {
		t.Fatalf("single process: exit = %d, stderr = %s", code, errb.String())
	}
	for _, shard := range []string{"1/2", "2/2"} {
		var out bytes.Buffer
		errb.Reset()
		if code := run([]string{"-all", "-matrix", "-filter", "lpr-create-site/*", "-j", "4", "-shard", shard, "-cache", dir}, &out, &errb); code != 0 {
			t.Fatalf("shard %s: exit = %d, stderr = %s", shard, code, errb.String())
		}
	}
	var merged bytes.Buffer
	errb.Reset()
	if code := run([]string{"-merge", dir, "-matrix"}, &merged, &errb); code != 0 {
		t.Fatalf("merge: exit = %d, stderr = %s", code, errb.String())
	}
	got := merged.String()
	cut := strings.Index(got, "merged from")
	if cut < 0 {
		t.Fatalf("merge output missing merged-shard section:\n%s", got)
	}
	// Trim the section plus the blank line that precedes it.
	got = strings.TrimSuffix(got[:cut], "\n")
	if got != full.String() {
		t.Errorf("merged matrix report diverges from single-process run:\n--- merged ---\n%s\n--- full ---\n%s", got, full.String())
	}
}

// TestFilterOnBaseCatalog: -filter works without -matrix too.
func TestFilterOnBaseCatalog(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	code := run([]string{"-all", "-filter", "*/fixed", "-j", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	if strings.Contains(out.String(), "/vulnerable") {
		t.Errorf("filter leaked vulnerable variants:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "turnin/fixed") {
		t.Errorf("filtered suite missing turnin/fixed:\n%s", out.String())
	}
}
