package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core/sched"
)

// progressJobs is a tiny fixed job list for renderer tests; Build is
// never invoked.
func progressJobs() []sched.Job {
	return []sched.Job{
		{Name: "alpha", Variant: "vulnerable"},
		{Name: "beta", Variant: "fixed"},
	}
}

// TestProgressRendererFrames drives the renderer through a campaign
// lifecycle and checks the painted frames: initial waiting rows, an
// in-place repaint per event, and the terminal states.
func TestProgressRendererFrames(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	jobs := progressJobs()
	p := newProgressRenderer(&out, jobs)

	p.Handle(sched.Event{Kind: sched.EventPlanned, Job: jobs[0], Total: 4})
	first := out.String()
	if strings.Contains(first, "\x1b[2A") {
		t.Error("first frame moved the cursor up before anything was drawn")
	}
	for _, want := range []string{"alpha/vulnerable", "beta/fixed", "waiting", "  0/4"} {
		if !strings.Contains(first, want) {
			t.Errorf("first frame missing %q:\n%q", want, first)
		}
	}

	p.Handle(sched.Event{Kind: sched.EventProgress, Job: jobs[0], Done: 2, Total: 4})
	p.Handle(sched.Event{Kind: sched.EventDone, Job: jobs[0], Done: 4, Total: 4})
	p.Handle(sched.Event{Kind: sched.EventPlanned, Job: jobs[1], Total: 3})
	p.Handle(sched.Event{Kind: sched.EventDone, Job: jobs[1], Done: 3, Total: 3, Cached: true})
	p.Close()
	got := out.String()
	for _, want := range []string{
		"\x1b[2A",      // in-place repaint over both rows
		"\x1b[2K",      // clear-line per row
		"############", // a part-filled or full bar
		"4/4   done",
		"3/3   cached",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frames missing %q:\n%q", want, got)
		}
	}
}

// TestProgressRendererFailure renders a planning failure inline.
func TestProgressRendererFailure(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	jobs := progressJobs()
	p := newProgressRenderer(&out, jobs)
	p.Handle(sched.Event{Kind: sched.EventDone, Job: jobs[0], Err: errors.New("no world factory")})
	if !strings.Contains(out.String(), "FAILED: no world factory") {
		t.Errorf("failure frame:\n%q", out.String())
	}
}

// TestProgressRendererCloseWithoutEvents paints the empty frame so the
// report never collides with half-initialised terminal state.
func TestProgressRendererCloseWithoutEvents(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	p := newProgressRenderer(&out, progressJobs())
	p.Close()
	if n := strings.Count(out.String(), "waiting"); n != 2 {
		t.Errorf("close painted %d waiting rows, want 2:\n%q", n, out.String())
	}
}

// TestIsTerminal pins the renderer gate: buffers and regular files are
// not terminals, so piped and CI output keeps the plain log lines.
func TestIsTerminal(t *testing.T) {
	t.Parallel()
	if isTerminal(&bytes.Buffer{}) {
		t.Error("a bytes.Buffer is not a terminal")
	}
	f, err := os.Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if isTerminal(f) {
		t.Error("a regular file is not a terminal")
	}
}
