// Command eptest runs an environment-perturbation fault-injection campaign
// against a named target application and prints the campaign report: the
// injection list, the violations, and the two-dimensional adequacy metric.
// With -all it schedules every catalog campaign (vulnerable and fixed
// variants) as one suite through the run-granularity work-stealing
// dispatcher and prints the summary table plus the clustered violation
// findings; on a terminal, live per-campaign progress bars track the run.
//
// Suite runs scale beyond one process through the result store (see
// docs/STORE.md): -cache makes re-runs incremental by replaying campaigns
// whose fingerprint is unchanged (source-level hits skip even the clean
// run), -shard k/n runs one deterministic partition of the suite and
// writes a mergeable shard artifact into the store, and -merge recombines
// the artifacts into the exact report an unsharded run would print.
//
// Suite runs scale beyond one machine through the cache transport (see
// docs/DISTRIBUTED.md): -serve-cache exposes a store directory over HTTP,
// and -cache-url points shard workers on other machines at it, so they
// share one cache and publish their artifacts to one merge point.
//
// Suite runs scale to an elastic fleet through the campaign coordinator
// (see docs/COORDINATOR.md): -serve-coord serves the catalog as a
// claimable queue beside the cache endpoints, and -coord-url workers
// claim jobs under time-bounded leases instead of owning a static
// shard — workers may join or leave (or crash) mid-run, expired leases
// requeue automatically, and when the queue drains the coordinator
// writes a merged artifact that `eptest -merge` renders byte-identical
// to a single-process run. -auth-token protects either server with a
// shared bearer token.
//
// Suite runs scale beyond the base catalog through the campaign matrix
// (see docs/ARCHITECTURE.md): -matrix expands every application into a
// deterministic grid of engine-option sweeps, site cuts, and multi-site
// compositions — an order of magnitude more campaigns — and prints a
// per-axis rollup after the suite report; -filter GLOB narrows any
// suite run to the jobs whose name/variant label matches.
//
// Every mode is observable (see docs/OBSERVABILITY.md): -trace FILE
// records each suite run as a Chrome trace_event span tree,
// -metrics-json FILE dumps the worker's metrics registry after the run,
// the servers expose Prometheus text at GET /metrics (the coordinator
// adds a live GET /v1/status JSON snapshot and a self-refreshing HTML
// page at GET /status), and -pprof ADDR starts the opt-in profiling
// listener on any long-running process.
//
// Usage:
//
//	eptest -list
//	eptest -campaign turnin [-fixed] [-per-point] [-v] [-j N]
//	eptest -all [-matrix] [-filter GLOB] [-j N] [-v] [-cache DIR | -cache-url URL] [-shard k/n] [-bench-json FILE]
//	eptest -all [-matrix] [-filter GLOB] -coord-url URL [-worker NAME] [-j N]
//	eptest -all ... [-trace FILE] [-metrics-json FILE] [-pprof ADDR]
//	eptest -merge DIR [-matrix]
//	eptest -bench-gate BASELINE.json -bench-json FRESH.json [-gate-tolerance F]
//	eptest -serve-cache ADDR -cache DIR [-auth-token TOKEN] [-pprof ADDR]
//	eptest -serve-coord ADDR -cache DIR [-matrix] [-filter GLOB] [-lease DUR] [-campaign-retention DUR] [-auth-token TOKEN] [-pprof ADDR]
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/core/coord"
	"repro/internal/core/findings"
	"repro/internal/core/inject"
	"repro/internal/core/obs"
	"repro/internal/core/report"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// suiteConfig carries the validated -all flags into runSuite.
type suiteConfig struct {
	workers  int
	verbose  bool
	cacheDir string
	cacheURL string
	shard    string
	// matrix selects the expanded campaign matrix instead of the base
	// catalog and adds the per-axis rollup to the report.
	matrix bool
	// filter narrows the suite to jobs whose label matches the glob.
	filter string
	// coordURL makes this process an elastic worker: jobs are claimed
	// from the coordinator instead of run from a static (sharded) list,
	// and the same URL serves as the shared result cache.
	coordURL string
	// worker is the display name sent to the coordinator.
	worker string
	// authToken is the shared bearer token for remote transports.
	authToken string
	// benchJSON, when set, writes machine-readable wall-time and
	// throughput stats for the run to the named file.
	benchJSON string
	// traceFile, when set, records every run, cache round trip and
	// coordinator call as a Chrome trace_event file.
	traceFile string
	// metricsJSON, when set, dumps the worker's metrics registry to the
	// named file after the run.
	metricsJSON string
	// findingsOut, when set, writes the suite's violations as canonical
	// machine-readable finding records to the named file.
	findingsOut string
	// pprofAddr, when set, serves net/http/pprof on a side listener for
	// the duration of the run.
	pprofAddr string
	// tty enables the live progress renderer; run() sets it when
	// stdout is a terminal and -v is off.
	tty bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eptest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list        = fs.Bool("list", false, "list available campaigns")
		campaign    = fs.String("campaign", "", "campaign to run (see -list)")
		all         = fs.Bool("all", false, "run every catalog campaign, both variants, as one suite")
		workers     = fs.Int("j", 1, "concurrent injection runs (must be >= 1)")
		fixed       = fs.Bool("fixed", false, "run against the repaired program variant")
		perPoint    = fs.Bool("per-point", false, "print the per-interaction-point breakdown")
		verbose     = fs.Bool("v", false, "print every injection (or, with -all, per-campaign progress and dispatcher stats)")
		cache       = fs.String("cache", "", "with -all: result-store directory; replay campaigns whose fingerprint is cached")
		cacheURL    = fs.String("cache-url", "", "with -all: remote cache server URL (a running `eptest -serve-cache`)")
		shard       = fs.String("shard", "", "with -all and a cache: run only partition \"k/n\" of the suite and write a shard artifact to the store")
		matrix      = fs.Bool("matrix", false, "with -all: run the expanded campaign matrix (option sweeps, site cuts, multi-site compositions) instead of the base catalog; with -merge: render the per-axis rollup")
		filter      = fs.String("filter", "", "with -all: run only jobs whose \"name/variant\" label matches GLOB ('*' crosses the separator, e.g. 'lpr*' or '*+nodedup*')")
		merge       = fs.String("merge", "", "merge the shard artifacts in a result-store directory and print the combined suite report")
		serveCache  = fs.String("serve-cache", "", "serve the -cache store over HTTP at ADDR (e.g. :7077) for -cache-url workers")
		serveCoord  = fs.String("serve-coord", "", "serve the -cache store AND the job catalog as a lease-based claim queue at ADDR for -coord-url workers (catalog selected by -matrix/-filter)")
		coordURL    = fs.String("coord-url", "", "with -all: claim jobs from a running `eptest -serve-coord` instead of owning a static shard; the same URL is used as the shared result cache")
		workerName  = fs.String("worker", "", "with -coord-url: worker name shown in the coordinator report (default host-pid)")
		authToken   = fs.String("auth-token", "", "shared bearer token: required of clients by -serve-cache/-serve-coord, sent by -cache-url/-coord-url workers")
		lease       = fs.Duration("lease", coord.DefaultLeaseTTL, "with -serve-coord: claim lease TTL; a worker silent this long loses its jobs back to the queue")
		retention   = fs.Duration("campaign-retention", coord.DefaultCampaignRetention, "with -serve-coord: how long a finished named campaign's status record stays visible before it is garbage-collected (0 keeps records forever)")
		snapshots   = fs.Bool("snapshots", true, "build each campaign world once and fork copy-on-write snapshots per injection run; -snapshots=false rebuilds every world from scratch (byte-identical results, for cross-checking)")
		oracleSeed  = fs.Bool("oracle-seed", true, "precompute each campaign's security-oracle state over the clean trace and evaluate each run from its armed point; -oracle-seed=false re-walks every run's full trace (byte-identical results, for cross-checking)")
		benchJSON   = fs.String("bench-json", "", "with -all: write machine-readable wall-time/throughput stats for the run to FILE; with -bench-gate: the fresh run's record to judge")
		benchGate   = fs.String("bench-gate", "", "compare the fresh -bench-json FILE against this committed baseline record and fail on a throughput regression (see -gate-tolerance)")
		gateTol     = fs.Float64("gate-tolerance", defaultGateTolerance, "with -bench-gate: allowed fractional throughput drop before the gate fails (0.4 = fail below 60% of baseline)")
		traceFile   = fs.String("trace", "", "with -all: record every injection run, cache round trip and coordinator call as a Chrome trace_event FILE (open in chrome://tracing or Perfetto)")
		metricsOut  = fs.String("metrics-json", "", "with -all: dump the worker's metrics registry (counters, gauges, histograms) to FILE after the run")
		pprofAddr   = fs.String("pprof", "", "with -all, -serve-cache or -serve-coord: serve net/http/pprof (plus /metrics) on a side listener at ADDR (e.g. localhost:6060)")
		findingsOut = fs.String("findings", "", "with -all or -merge: write the suite's violations as canonical machine-readable finding records (schema eptest-findings/1) to FILE")
		diffOld     = fs.String("diff", "", "semantically diff two findings files: `eptest -diff OLD NEW` classifies drift as new/fixed/changed instead of byte inequality")
		diffFailOn  = fs.String("diff-fail-on", "", "with -diff: exit non-zero when the diff contains any finding in the named drift classes (comma-separated from new, changed, fixed; or 'any'/'none')")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Applied unconditionally (not only when the flag is passed): run() is
	// re-entered by tests, and the toggles are process-wide.
	inject.SetWorldSnapshots(*snapshots)
	inject.SetOracleSeeding(*oracleSeed)

	if *workers < 1 {
		fmt.Fprintf(stderr, "eptest: -j %d is not a worker count; pass how many injection runs may execute concurrently (-j 1 for sequential, -j 8 for eight workers)\n", *workers)
		return 2
	}
	if *authToken != "" && *serveCache == "" && *serveCoord == "" && *cacheURL == "" && *coordURL == "" {
		fmt.Fprintln(stderr, "eptest: -auth-token does nothing without -serve-cache, -serve-coord, -cache-url or -coord-url")
		return 2
	}
	if *lease != coord.DefaultLeaseTTL && *serveCoord == "" {
		fmt.Fprintln(stderr, "eptest: -lease is a coordinator-side setting; it needs -serve-coord (workers inherit the TTL at registration)")
		return 2
	}
	if *retention != coord.DefaultCampaignRetention && *serveCoord == "" {
		fmt.Fprintln(stderr, "eptest: -campaign-retention is a coordinator-side setting; it needs -serve-coord")
		return 2
	}
	if *benchGate != "" {
		if *list || *all || *campaign != "" || *merge != "" || *serveCache != "" || *serveCoord != "" {
			fmt.Fprintln(stderr, "eptest: -bench-gate runs alone, comparing two bench-json records; produce the fresh one first with `eptest -all -bench-json FILE`")
			return 2
		}
		if *benchJSON == "" {
			fmt.Fprintln(stderr, "eptest: -bench-gate needs -bench-json FILE naming the fresh run's record")
			return 2
		}
		return runBenchGate(*benchGate, *benchJSON, *gateTol, stdout, stderr)
	}
	if *gateTol != defaultGateTolerance {
		fmt.Fprintln(stderr, "eptest: -gate-tolerance does nothing without -bench-gate")
		return 2
	}
	if *diffOld != "" {
		if fs.NArg() == 0 {
			fmt.Fprintln(stderr, "eptest: -diff OLD needs exactly one NEW findings file as its argument: `eptest -diff OLD NEW`")
			return 2
		}
		// Parsing stops at the first positional argument, so flags
		// written after NEW (`eptest -diff OLD NEW -diff-fail-on new`)
		// arrive as leftovers; take NEW, then parse the rest.
		newPath := fs.Arg(0)
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return 2
		}
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "eptest: -diff compares exactly two findings files: `eptest -diff OLD NEW`")
			return 2
		}
		if *list || *all || *campaign != "" || *merge != "" || *serveCache != "" || *serveCoord != "" || *findingsOut != "" {
			fmt.Fprintln(stderr, "eptest: -diff runs alone, comparing two findings files; produce them first with `eptest -all -findings FILE`")
			return 2
		}
		return runDiff(*diffOld, newPath, *diffFailOn, stdout, stderr)
	}
	if *diffFailOn != "" {
		fmt.Fprintln(stderr, "eptest: -diff-fail-on gates a findings diff; it needs -diff OLD NEW")
		return 2
	}
	if *findingsOut != "" && !*all && *merge == "" {
		fmt.Fprintln(stderr, "eptest: -findings exports a suite's violation records; it requires -all or -merge")
		return 2
	}
	if (*traceFile != "" || *metricsOut != "") && !*all {
		fmt.Fprintln(stderr, "eptest: -trace and -metrics-json record a suite run; they require -all")
		return 2
	}
	if *pprofAddr != "" && !*all && *serveCache == "" && *serveCoord == "" {
		fmt.Fprintln(stderr, "eptest: -pprof profiles a long-running process; it needs -all, -serve-cache or -serve-coord")
		return 2
	}
	if *serveCoord != "" {
		if *list || *all || *campaign != "" || *merge != "" || *shard != "" || *cacheURL != "" || *coordURL != "" || *serveCache != "" {
			fmt.Fprintln(stderr, "eptest: -serve-coord runs alone with -cache DIR (plus -matrix/-filter/-lease/-auth-token); start workers separately with -coord-url")
			return 2
		}
		if *cache == "" {
			fmt.Fprintln(stderr, "eptest: -serve-coord needs -cache DIR naming the store directory that holds the cache and the merged artifact")
			return 2
		}
		if *lease <= 0 {
			fmt.Fprintf(stderr, "eptest: -lease %v is not a lease TTL; pass how long a silent worker keeps its claims (e.g. -lease 60s)\n", *lease)
			return 2
		}
		return runServeCoord(*serveCoord, *cache, *matrix, *filter, *lease, *retention, *authToken, *pprofAddr, stdout, stderr)
	}
	if *serveCache != "" {
		if *list || *all || *campaign != "" || *merge != "" || *shard != "" || *cacheURL != "" || *coordURL != "" || *matrix || *filter != "" {
			fmt.Fprintln(stderr, "eptest: -serve-cache runs alone with -cache DIR (no -list/-all/-campaign/-merge/-shard/-cache-url/-coord-url); start workers separately with -cache-url")
			return 2
		}
		if *cache == "" {
			fmt.Fprintln(stderr, "eptest: -serve-cache needs -cache DIR naming the store directory to serve")
			return 2
		}
		return runServeCache(*serveCache, *cache, *authToken, *pprofAddr, stdout, stderr)
	}
	if *merge != "" {
		if *list || *all || *campaign != "" || *shard != "" || *cache != "" || *cacheURL != "" || *coordURL != "" || *filter != "" {
			fmt.Fprintln(stderr, "eptest: -merge runs alone (no -list/-all/-campaign/-shard/-cache/-cache-url/-coord-url/-filter)")
			return 2
		}
		return runMerge(*merge, *matrix, *findingsOut, stdout, stderr)
	}
	if *list {
		fmt.Fprintln(stdout, "available campaigns:")
		for _, s := range apps.Catalog() {
			fmt.Fprintf(stdout, "  %-18s %s\n", s.Name, s.Paper)
		}
		return 0
	}
	if *all {
		if *coordURL != "" && (*cache != "" || *cacheURL != "" || *shard != "") {
			fmt.Fprintln(stderr, "eptest: -coord-url replaces -cache/-cache-url/-shard — the coordinator is the cache, and claims replace the static partition")
			return 2
		}
		if *workerName != "" && *coordURL == "" {
			fmt.Fprintln(stderr, "eptest: -worker names this process to a coordinator; it needs -coord-url")
			return 2
		}
		cfg := suiteConfig{
			workers:     *workers,
			verbose:     *verbose,
			cacheDir:    *cache,
			cacheURL:    *cacheURL,
			shard:       *shard,
			matrix:      *matrix,
			filter:      *filter,
			coordURL:    *coordURL,
			worker:      *workerName,
			authToken:   *authToken,
			benchJSON:   *benchJSON,
			traceFile:   *traceFile,
			metricsJSON: *metricsOut,
			findingsOut: *findingsOut,
			pprofAddr:   *pprofAddr,
			// The coordinator hands jobs out one at a time, so the
			// renderer's fixed upfront job list does not apply there.
			tty: !*verbose && *coordURL == "" && isTerminal(stdout),
		}
		return runSuite(cfg, stdout, stderr)
	}
	if *shard != "" || *cache != "" || *cacheURL != "" || *coordURL != "" || *matrix || *filter != "" || *benchJSON != "" || *workerName != "" {
		fmt.Fprintln(stderr, "eptest: -cache, -cache-url, -coord-url, -worker, -shard, -filter and -bench-json require -all; -matrix requires -all or -merge")
		return 2
	}
	if *campaign == "" {
		fmt.Fprintln(stderr, "eptest: -campaign required (or -list / -all)")
		fs.Usage()
		return 2
	}

	spec, err := apps.Lookup(*campaign)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	c := spec.Vulnerable()
	if *fixed {
		c = spec.Fixed()
	}
	res, err := runCampaign(c, *workers)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: campaign failed: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, report.Campaign(res))
	if *perPoint {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.PerPoint(res))
	}
	if *verbose {
		fmt.Fprintln(stdout, "\nall injections:")
		for _, in := range res.Injections {
			status := "tolerated"
			if !in.Tolerated() {
				status = "VIOLATED"
			}
			fmt.Fprintf(stdout, "  %-28s %-44s %s\n", in.Point, in.FaultID, status)
		}
	}
	if res.Metric().Violations() > 0 {
		return 1
	}
	return 0
}

// runCampaign dispatches one campaign to the sequential engine or, for
// -j other than 1, the worker-pool scheduler. Both produce identical
// results; the split keeps -j 1 on the engine the paper describes.
func runCampaign(c inject.Campaign, workers int) (*inject.Result, error) {
	if workers == 1 {
		return inject.Run(c)
	}
	return sched.RunCampaign(c, sched.Config{Workers: workers})
}

// suiteTransport opens the result transport the flags select: the
// local directory store, the HTTP cache client (dialled to the cache
// server, or to the coordinator, which serves the same endpoints), or
// nothing. A remote client records its round-trip latencies into reg.
func suiteTransport(cfg suiteConfig, reg *obs.Registry, stderr io.Writer) (store.Transport, string, bool) {
	switch {
	case cfg.cacheDir != "" && cfg.cacheURL != "":
		fmt.Fprintln(stderr, "eptest: -cache and -cache-url are alternative transports; pass exactly one")
		return nil, "", false
	case cfg.cacheDir != "":
		st, err := store.Open(cfg.cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return nil, "", false
		}
		return st, st.Dir(), true
	case cfg.cacheURL != "" || cfg.coordURL != "":
		rawURL, hint := cfg.cacheURL, "-serve-cache"
		if cfg.coordURL != "" {
			rawURL, hint = cfg.coordURL, "-serve-coord"
		}
		cl, err := store.Dial(rawURL, store.WithToken(cfg.authToken), store.WithMetrics(reg))
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v (start one with `eptest %s ADDR -cache DIR`)\n", err, hint)
			return nil, "", false
		}
		return cl, cl.Base(), true
	}
	return nil, "", true
}

// runSuite schedules the full catalog through the work-stealing
// dispatcher and prints the summary table and clustered findings. The
// exit code reflects scheduling health (a campaign that fails to
// plan), not violations: the suite intentionally includes vulnerable
// variants, so findings are the expected output, not an error.
//
// With a cache transport the suite runs incrementally; with a shard
// spec it runs one deterministic partition of the job list and
// publishes a shard artifact for a later -merge. The suite report
// proper (summary table + clusters) always comes first and is
// identical between cold and warm cache runs; the cache, dispatcher
// and shard sections follow.
func runSuite(cfg suiteConfig, stdout, stderr io.Writer) int {
	// The shard partition — and the catalog its artifact records — is
	// over the filtered job list, so every shard of one merge must be
	// produced with the same -matrix and -filter flags; the merge's
	// catalog check rejects mixtures, and the coordinator rejects
	// workers whose catalog differs from its own.
	jobs, catalog, err := suiteCatalog(cfg.matrix, cfg.filter)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	// The registry always exists (registration is cheap and the handles
	// are atomic); the flags only decide whether its contents leave the
	// process. The tracer is per-flag: a nil *obs.Tracer disables every
	// span site.
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if cfg.traceFile != "" {
		tracer, err = obs.StartTrace(cfg.traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 2
		}
		tracer.NameProcess("eptest " + workerDisplayName(cfg.worker))
		defer tracer.Close()
	}
	// The pprof banner goes to stderr so the report on stdout stays
	// byte-identical with profiling on.
	if !startPprof(cfg.pprofAddr, reg, stderr, stderr) {
		return 2
	}
	// Coordinator mode: register against the claim queue before
	// anything else, so a malformed URL, a wrong token, or a catalog
	// mismatch fails fast, before any transport or work starts.
	var (
		coordClient *coord.Client
		source      *coord.Source
	)
	if cfg.coordURL != "" {
		var err error
		coordClient, err = coord.Dial(cfg.coordURL, coord.WithToken(cfg.authToken), coord.WithMetrics(reg))
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v (start one with `eptest -serve-coord ADDR -cache DIR`)\n", err)
			return 2
		}
		if err := coordClient.Register(workerDisplayName(cfg.worker), catalog); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 2
		}
		if source, err = coord.NewSource(coordClient, jobs, coord.WithSourceTracer(tracer)); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 2
		}
		defer source.Close()
	}

	var (
		spec    sched.ShardSpec
		indices []int
	)
	tr, dest, ok := suiteTransport(cfg, reg, stderr)
	if !ok {
		return 2
	}
	if cfg.shard != "" {
		var err error
		spec, err = sched.ParseShard(cfg.shard)
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 2
		}
		if tr == nil {
			fmt.Fprintln(stderr, "eptest: -shard needs -cache DIR or -cache-url URL to hold the shard artifact")
			return 2
		}
		jobs, indices = sched.ShardJobs(jobs, spec)
		if len(jobs) == 0 {
			fmt.Fprintf(stderr, "eptest: shard %s of the %d-job catalog selects zero jobs; lower n or broaden -filter\n", spec, len(catalog))
			return 2
		}
	}

	opt := sched.SuiteOptions{Workers: cfg.workers, Metrics: reg, Tracer: tracer}
	if tr != nil {
		opt.Cache = tr
	}
	var progress *progressRenderer
	switch {
	case cfg.tty:
		progress = newProgressRenderer(stdout, jobs)
		opt.OnEvent = progress.Handle
	case cfg.verbose:
		opt.OnEvent = func(ev sched.Event) {
			switch ev.Kind {
			case sched.EventPlanned:
				fmt.Fprintf(stdout, "[%s] planned %d injection runs\n", ev.Job.Label(), ev.Total)
			case sched.EventDone:
				switch {
				case ev.Err != nil:
					fmt.Fprintf(stdout, "[%s] FAILED: %v\n", ev.Job.Label(), ev.Err)
				case ev.Cached:
					fmt.Fprintf(stdout, "[%s] cached (%d runs replayed)\n", ev.Job.Label(), ev.Total)
				default:
					fmt.Fprintf(stdout, "[%s] done (%d/%d)\n", ev.Job.Label(), ev.Done, ev.Total)
				}
			}
		}
	}
	// The Mallocs delta around the suite feeds allocs_per_run in the
	// bench record; ReadMemStats stops the world, so only pay for it
	// when a record was requested.
	var memBefore runtime.MemStats
	if cfg.benchJSON != "" {
		runtime.ReadMemStats(&memBefore)
	}
	start := time.Now()
	var sr *sched.SuiteResult
	if source != nil {
		sr = sched.RunSuiteFrom(source, opt)
		source.Close()
	} else {
		sr = sched.RunSuite(jobs, opt)
	}
	wall := time.Since(start)
	var suiteAllocs uint64
	if cfg.benchJSON != "" {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		suiteAllocs = memAfter.Mallocs - memBefore.Mallocs
	}
	if progress != nil {
		progress.Close()
	}
	// The findings fold runs unconditionally, like the rest of the
	// registry: -findings only decides whether the records leave the
	// process, while eptest_findings_total is always live for
	// -metrics-json and the bench record.
	findingsReport := findings.FromSuite(sr)
	findings.Instrument(reg, findingsReport)
	fmt.Fprint(stdout, report.SuiteRun(sr))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Clusters(sched.ClusterSuite(sr)))
	if cfg.matrix {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.Matrix(sr))
	}
	if tr != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.CacheStats(sr))
		if cl, ok := tr.(*store.Client); ok {
			fmt.Fprint(stdout, report.CacheTransport(cl))
		}
	}
	if coordClient != nil {
		fmt.Fprintln(stdout)
		if st, err := coordClient.State(); err != nil {
			fmt.Fprintf(stdout, "coordinator: state unavailable: %v\n", err)
		} else {
			fmt.Fprint(stdout, st.Render())
		}
	}
	if cfg.verbose {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.Dispatch(sr))
	}
	if !spec.IsZero() {
		if err := tr.WriteShard(spec, catalog, indices, sr); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "shard %s: wrote %d job(s) to %s\n", spec, len(jobs), dest)
	}
	if cfg.findingsOut != "" {
		if err := findingsReport.WriteFile(cfg.findingsOut); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d finding record(s) to %s\n", len(findingsReport.Findings), cfg.findingsOut)
	}
	if tracer != nil {
		// The explicit Close (the deferred one is a backstop for error
		// paths) flushes the span stream and surfaces write errors while
		// the exit code can still reflect them.
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote trace (%d events) to %s\n", tracer.Events(), cfg.traceFile)
	}
	if cfg.metricsJSON != "" {
		if err := reg.WriteJSONFile(cfg.metricsJSON); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote metrics snapshot to %s\n", cfg.metricsJSON)
	}
	if cfg.benchJSON != "" {
		if err := writeBenchJSON(cfg, sr, len(catalog), wall, suiteAllocs, source, reg); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote benchmark stats to %s\n", cfg.benchJSON)
	}
	if source != nil {
		if err := source.Err(); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 1
		}
	}
	if len(sr.Failed()) > 0 {
		return 1
	}
	return 0
}

// runMerge recombines the shard artifacts under dir into one suite
// report — byte-identical, up to the trailing merged-shard section, to
// the report an unsharded -all run over the same catalog prints. With
// matrix set (shards produced by -matrix workers), the per-axis rollup
// is rendered in its unsharded position too.
func runMerge(dir string, matrix bool, findingsOut string, stdout, stderr io.Writer) int {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	sr, infos, err := st.MergeShards()
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, report.SuiteRun(sr))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Clusters(sched.ClusterSuite(sr)))
	if matrix {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.Matrix(sr))
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.MergedShards(infos))
	if findingsOut != "" {
		// Findings are keyed and sorted by content, so the merged
		// export is byte-identical to the file a single-process -all
		// run writes.
		rep := findings.FromSuite(sr)
		if err := rep.WriteFile(findingsOut); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d finding record(s) to %s\n", len(rep.Findings), findingsOut)
	}
	if len(sr.Failed()) > 0 {
		return 1
	}
	return 0
}

// runServeCache serves the store at dir over HTTP until the process is
// terminated. Killing the server at any moment is safe: every store
// write goes through an atomic rename, so readers and a later -merge
// never observe partial files. A non-empty token puts the server
// behind `Authorization: Bearer` (GET /v1/meta stays open for
// liveness probes; GET /metrics needs the token like any other route).
func runServeCache(addr, dir, token, pprofAddr string, stdout, stderr io.Writer) int {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	reg := obs.NewRegistry()
	if !startPprof(pprofAddr, reg, stdout, stderr) {
		return 2
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("/", store.NewServer(st, store.WithServerMetrics(reg)))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: -serve-cache %s: %v\n", addr, err)
		return 2
	}
	fmt.Fprintf(stdout, "eptest: cache server listening on %s (store %s)\n", ln.Addr(), st.Dir())
	if err := http.Serve(ln, store.BearerAuth(token, mux)); err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 1
	}
	return 0
}

// startPprof starts the opt-in profiling listener when the -pprof flag
// was given. It returns false only on a bind failure; an empty addr is
// a no-op success.
func startPprof(addr string, reg *obs.Registry, stdout, stderr io.Writer) bool {
	if addr == "" {
		return true
	}
	got, err := obs.ServePprof(addr, reg)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return false
	}
	fmt.Fprintf(stdout, "eptest: pprof listening on http://%s/debug/pprof/\n", got)
	return true
}
