// Command eptest runs an environment-perturbation fault-injection campaign
// against a named target application and prints the campaign report: the
// injection list, the violations, and the two-dimensional adequacy metric.
// With -all it schedules every catalog campaign (vulnerable and fixed
// variants) as one suite across a worker pool and prints the summary
// table plus the clustered violation findings.
//
// Suite runs scale beyond one process through the result store (see
// docs/STORE.md): -cache makes re-runs incremental by replaying
// campaigns whose plan fingerprint is unchanged, -shard k/n runs one
// deterministic partition of the suite and writes a mergeable shard
// artifact into the store, and -merge recombines the artifacts into the
// exact report an unsharded run would print.
//
// Usage:
//
//	eptest -list
//	eptest -campaign turnin [-fixed] [-per-point] [-v] [-j N]
//	eptest -all [-j N] [-v] [-cache DIR] [-shard k/n]
//	eptest -merge DIR
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/apps"
	"repro/internal/core/inject"
	"repro/internal/core/report"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eptest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list available campaigns")
		campaign = fs.String("campaign", "", "campaign to run (see -list)")
		all      = fs.Bool("all", false, "run every catalog campaign, both variants, as one suite")
		workers  = fs.Int("j", 1, "concurrent injection runs (0 = all CPUs)")
		fixed    = fs.Bool("fixed", false, "run against the repaired program variant")
		perPoint = fs.Bool("per-point", false, "print the per-interaction-point breakdown")
		verbose  = fs.Bool("v", false, "print every injection (or, with -all, per-campaign progress)")
		cache    = fs.String("cache", "", "with -all: result-store directory; replay campaigns whose plan fingerprint is cached")
		shard    = fs.String("shard", "", "with -all and -cache: run only partition \"k/n\" of the suite and write a shard artifact to the store")
		merge    = fs.String("merge", "", "merge the shard artifacts in a result-store directory and print the combined suite report")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *merge != "" {
		if *list || *all || *campaign != "" || *shard != "" || *cache != "" {
			fmt.Fprintln(stderr, "eptest: -merge runs alone (no -list/-all/-campaign/-shard/-cache)")
			return 2
		}
		return runMerge(*merge, stdout, stderr)
	}
	if *list {
		fmt.Fprintln(stdout, "available campaigns:")
		for _, s := range apps.Catalog() {
			fmt.Fprintf(stdout, "  %-18s %s\n", s.Name, s.Paper)
		}
		return 0
	}
	if *all {
		return runSuite(*workers, *verbose, *cache, *shard, stdout, stderr)
	}
	if *shard != "" || *cache != "" {
		fmt.Fprintln(stderr, "eptest: -cache and -shard require -all")
		return 2
	}
	if *campaign == "" {
		fmt.Fprintln(stderr, "eptest: -campaign required (or -list / -all)")
		fs.Usage()
		return 2
	}

	spec, err := apps.Lookup(*campaign)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	c := spec.Vulnerable()
	if *fixed {
		c = spec.Fixed()
	}
	res, err := runCampaign(c, *workers)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: campaign failed: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, report.Campaign(res))
	if *perPoint {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.PerPoint(res))
	}
	if *verbose {
		fmt.Fprintln(stdout, "\nall injections:")
		for _, in := range res.Injections {
			status := "tolerated"
			if !in.Tolerated() {
				status = "VIOLATED"
			}
			fmt.Fprintf(stdout, "  %-28s %-44s %s\n", in.Point, in.FaultID, status)
		}
	}
	if res.Metric().Violations() > 0 {
		return 1
	}
	return 0
}

// runCampaign dispatches one campaign to the sequential engine or, for
// -j other than 1, the worker-pool scheduler. Both produce identical
// results; the split keeps -j 1 on the engine the paper describes.
func runCampaign(c inject.Campaign, workers int) (*inject.Result, error) {
	if workers == 1 {
		return inject.Run(c)
	}
	return sched.RunCampaign(c, sched.Config{Workers: workers})
}

// runSuite schedules the full catalog, both variants, and prints the
// summary table and clustered findings. The exit code reflects
// scheduling health (a campaign that fails to plan), not violations:
// the suite intentionally includes vulnerable variants, so findings
// are the expected output, not an error.
//
// With cacheDir the suite runs against a result store; with shardSpec
// it runs one deterministic partition of the job list and writes a
// shard artifact into the store for a later -merge. The suite report
// proper (summary table + clusters) always comes first and is identical
// between cold and warm cache runs; the cache and shard sections follow.
func runSuite(workers int, verbose bool, cacheDir, shardSpec string, stdout, stderr io.Writer) int {
	jobs := apps.SuiteJobs()
	catalog := make([]string, len(jobs))
	for i, j := range jobs {
		catalog[i] = j.Label()
	}
	var (
		spec    sched.ShardSpec
		indices []int
	)
	if shardSpec != "" {
		var err error
		spec, err = sched.ParseShard(shardSpec)
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 2
		}
		if cacheDir == "" {
			fmt.Fprintln(stderr, "eptest: -shard needs -cache DIR to hold the shard artifact")
			return 2
		}
		jobs, indices = sched.ShardJobs(jobs, spec)
	}

	opt := sched.SuiteOptions{Workers: workers}
	var st *store.Store
	if cacheDir != "" {
		var err error
		st, err = store.Open(cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 2
		}
		opt.Cache = st
	}
	if verbose {
		opt.OnEvent = func(ev sched.Event) {
			switch ev.Kind {
			case sched.EventPlanned:
				fmt.Fprintf(stdout, "[%s] planned %d injection runs\n", ev.Job.Label(), ev.Total)
			case sched.EventDone:
				switch {
				case ev.Err != nil:
					fmt.Fprintf(stdout, "[%s] FAILED: %v\n", ev.Job.Label(), ev.Err)
				case ev.Cached:
					fmt.Fprintf(stdout, "[%s] cached (%d runs replayed)\n", ev.Job.Label(), ev.Total)
				default:
					fmt.Fprintf(stdout, "[%s] done (%d/%d)\n", ev.Job.Label(), ev.Done, ev.Total)
				}
			}
		}
	}
	sr := sched.RunSuite(jobs, opt)
	fmt.Fprint(stdout, report.SuiteRun(sr))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Clusters(sched.ClusterSuite(sr)))
	if st != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.CacheStats(sr))
	}
	if !spec.IsZero() {
		if err := st.WriteShard(spec, catalog, indices, sr); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "shard %s: wrote %d job(s) to %s\n", spec, len(jobs), st.Dir())
	}
	if len(sr.Failed()) > 0 {
		return 1
	}
	return 0
}

// runMerge recombines the shard artifacts under dir into one suite
// report — byte-identical, up to the trailing merged-shard section, to
// the report an unsharded -all run over the same catalog prints.
func runMerge(dir string, stdout, stderr io.Writer) int {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	sr, infos, err := st.MergeShards()
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, report.SuiteRun(sr))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Clusters(sched.ClusterSuite(sr)))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.MergedShards(infos))
	if len(sr.Failed()) > 0 {
		return 1
	}
	return 0
}
