// Command eptest runs an environment-perturbation fault-injection campaign
// against a named target application and prints the campaign report: the
// injection list, the violations, and the two-dimensional adequacy metric.
// With -all it schedules every catalog campaign (vulnerable and fixed
// variants) as one suite through the run-granularity work-stealing
// dispatcher and prints the summary table plus the clustered violation
// findings; on a terminal, live per-campaign progress bars track the run.
//
// Suite runs scale beyond one process through the result store (see
// docs/STORE.md): -cache makes re-runs incremental by replaying campaigns
// whose fingerprint is unchanged (source-level hits skip even the clean
// run), -shard k/n runs one deterministic partition of the suite and
// writes a mergeable shard artifact into the store, and -merge recombines
// the artifacts into the exact report an unsharded run would print.
//
// Suite runs scale beyond one machine through the cache transport (see
// docs/DISTRIBUTED.md): -serve-cache exposes a store directory over HTTP,
// and -cache-url points shard workers on other machines at it, so they
// share one cache and publish their artifacts to one merge point.
//
// Suite runs scale beyond the base catalog through the campaign matrix
// (see docs/ARCHITECTURE.md): -matrix expands every application into a
// deterministic grid of engine-option sweeps, site cuts, and multi-site
// compositions — an order of magnitude more campaigns — and prints a
// per-axis rollup after the suite report; -filter GLOB narrows any
// suite run to the jobs whose name/variant label matches.
//
// Usage:
//
//	eptest -list
//	eptest -campaign turnin [-fixed] [-per-point] [-v] [-j N]
//	eptest -all [-matrix] [-filter GLOB] [-j N] [-v] [-cache DIR | -cache-url URL] [-shard k/n]
//	eptest -merge DIR [-matrix]
//	eptest -serve-cache ADDR -cache DIR
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"repro/internal/apps"
	"repro/internal/apps/matrix"
	"repro/internal/core/inject"
	"repro/internal/core/report"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// suiteConfig carries the validated -all flags into runSuite.
type suiteConfig struct {
	workers  int
	verbose  bool
	cacheDir string
	cacheURL string
	shard    string
	// matrix selects the expanded campaign matrix instead of the base
	// catalog and adds the per-axis rollup to the report.
	matrix bool
	// filter narrows the suite to jobs whose label matches the glob.
	filter string
	// tty enables the live progress renderer; run() sets it when
	// stdout is a terminal and -v is off.
	tty bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eptest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list available campaigns")
		campaign   = fs.String("campaign", "", "campaign to run (see -list)")
		all        = fs.Bool("all", false, "run every catalog campaign, both variants, as one suite")
		workers    = fs.Int("j", 1, "concurrent injection runs (must be >= 1)")
		fixed      = fs.Bool("fixed", false, "run against the repaired program variant")
		perPoint   = fs.Bool("per-point", false, "print the per-interaction-point breakdown")
		verbose    = fs.Bool("v", false, "print every injection (or, with -all, per-campaign progress and dispatcher stats)")
		cache      = fs.String("cache", "", "with -all: result-store directory; replay campaigns whose fingerprint is cached")
		cacheURL   = fs.String("cache-url", "", "with -all: remote cache server URL (a running `eptest -serve-cache`)")
		shard      = fs.String("shard", "", "with -all and a cache: run only partition \"k/n\" of the suite and write a shard artifact to the store")
		matrix     = fs.Bool("matrix", false, "with -all: run the expanded campaign matrix (option sweeps, site cuts, multi-site compositions) instead of the base catalog; with -merge: render the per-axis rollup")
		filter     = fs.String("filter", "", "with -all: run only jobs whose \"name/variant\" label matches GLOB ('*' crosses the separator, e.g. 'lpr*' or '*+nodedup*')")
		merge      = fs.String("merge", "", "merge the shard artifacts in a result-store directory and print the combined suite report")
		serveCache = fs.String("serve-cache", "", "serve the -cache store over HTTP at ADDR (e.g. :7077) for -cache-url workers")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *workers < 1 {
		fmt.Fprintf(stderr, "eptest: -j %d is not a worker count; pass how many injection runs may execute concurrently (-j 1 for sequential, -j 8 for eight workers)\n", *workers)
		return 2
	}
	if *serveCache != "" {
		if *list || *all || *campaign != "" || *merge != "" || *shard != "" || *cacheURL != "" || *matrix || *filter != "" {
			fmt.Fprintln(stderr, "eptest: -serve-cache runs alone with -cache DIR (no -list/-all/-campaign/-merge/-shard/-cache-url); start workers separately with -cache-url")
			return 2
		}
		if *cache == "" {
			fmt.Fprintln(stderr, "eptest: -serve-cache needs -cache DIR naming the store directory to serve")
			return 2
		}
		return runServeCache(*serveCache, *cache, stdout, stderr)
	}
	if *merge != "" {
		if *list || *all || *campaign != "" || *shard != "" || *cache != "" || *cacheURL != "" || *filter != "" {
			fmt.Fprintln(stderr, "eptest: -merge runs alone (no -list/-all/-campaign/-shard/-cache/-cache-url/-filter)")
			return 2
		}
		return runMerge(*merge, *matrix, stdout, stderr)
	}
	if *list {
		fmt.Fprintln(stdout, "available campaigns:")
		for _, s := range apps.Catalog() {
			fmt.Fprintf(stdout, "  %-18s %s\n", s.Name, s.Paper)
		}
		return 0
	}
	if *all {
		cfg := suiteConfig{
			workers:  *workers,
			verbose:  *verbose,
			cacheDir: *cache,
			cacheURL: *cacheURL,
			shard:    *shard,
			matrix:   *matrix,
			filter:   *filter,
			tty:      !*verbose && isTerminal(stdout),
		}
		return runSuite(cfg, stdout, stderr)
	}
	if *shard != "" || *cache != "" || *cacheURL != "" || *matrix || *filter != "" {
		fmt.Fprintln(stderr, "eptest: -cache, -cache-url, -shard and -filter require -all; -matrix requires -all or -merge")
		return 2
	}
	if *campaign == "" {
		fmt.Fprintln(stderr, "eptest: -campaign required (or -list / -all)")
		fs.Usage()
		return 2
	}

	spec, err := apps.Lookup(*campaign)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	c := spec.Vulnerable()
	if *fixed {
		c = spec.Fixed()
	}
	res, err := runCampaign(c, *workers)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: campaign failed: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, report.Campaign(res))
	if *perPoint {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.PerPoint(res))
	}
	if *verbose {
		fmt.Fprintln(stdout, "\nall injections:")
		for _, in := range res.Injections {
			status := "tolerated"
			if !in.Tolerated() {
				status = "VIOLATED"
			}
			fmt.Fprintf(stdout, "  %-28s %-44s %s\n", in.Point, in.FaultID, status)
		}
	}
	if res.Metric().Violations() > 0 {
		return 1
	}
	return 0
}

// runCampaign dispatches one campaign to the sequential engine or, for
// -j other than 1, the worker-pool scheduler. Both produce identical
// results; the split keeps -j 1 on the engine the paper describes.
func runCampaign(c inject.Campaign, workers int) (*inject.Result, error) {
	if workers == 1 {
		return inject.Run(c)
	}
	return sched.RunCampaign(c, sched.Config{Workers: workers})
}

// suiteTransport opens the result transport the flags select: the
// local directory store, the HTTP cache client, or nothing.
func suiteTransport(cfg suiteConfig, stderr io.Writer) (store.Transport, string, bool) {
	switch {
	case cfg.cacheDir != "" && cfg.cacheURL != "":
		fmt.Fprintln(stderr, "eptest: -cache and -cache-url are alternative transports; pass exactly one")
		return nil, "", false
	case cfg.cacheDir != "":
		st, err := store.Open(cfg.cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return nil, "", false
		}
		return st, st.Dir(), true
	case cfg.cacheURL != "":
		cl, err := store.Dial(cfg.cacheURL)
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v (start one with `eptest -serve-cache ADDR -cache DIR`)\n", err)
			return nil, "", false
		}
		return cl, cl.Base(), true
	}
	return nil, "", true
}

// runSuite schedules the full catalog through the work-stealing
// dispatcher and prints the summary table and clustered findings. The
// exit code reflects scheduling health (a campaign that fails to
// plan), not violations: the suite intentionally includes vulnerable
// variants, so findings are the expected output, not an error.
//
// With a cache transport the suite runs incrementally; with a shard
// spec it runs one deterministic partition of the job list and
// publishes a shard artifact for a later -merge. The suite report
// proper (summary table + clusters) always comes first and is
// identical between cold and warm cache runs; the cache, dispatcher
// and shard sections follow.
func runSuite(cfg suiteConfig, stdout, stderr io.Writer) int {
	jobs := apps.SuiteJobs()
	if cfg.matrix {
		jobs = matrix.SuiteJobs()
	}
	if cfg.filter != "" {
		jobs = sched.FilterJobs(jobs, cfg.filter)
		if len(jobs) == 0 {
			fmt.Fprintf(stderr, "eptest: -filter %q selects zero jobs; try a broader glob (see -list, or -matrix labels like \"lpr/vulnerable+nodedup\")\n", cfg.filter)
			return 2
		}
	}
	// The shard partition — and the catalog its artifact records — is
	// over the filtered job list, so every shard of one merge must be
	// produced with the same -matrix and -filter flags; the merge's
	// catalog check rejects mixtures.
	catalog := make([]string, len(jobs))
	for i, j := range jobs {
		catalog[i] = j.Label()
	}
	var (
		spec    sched.ShardSpec
		indices []int
	)
	tr, dest, ok := suiteTransport(cfg, stderr)
	if !ok {
		return 2
	}
	if cfg.shard != "" {
		var err error
		spec, err = sched.ParseShard(cfg.shard)
		if err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 2
		}
		if tr == nil {
			fmt.Fprintln(stderr, "eptest: -shard needs -cache DIR or -cache-url URL to hold the shard artifact")
			return 2
		}
		jobs, indices = sched.ShardJobs(jobs, spec)
		if len(jobs) == 0 {
			fmt.Fprintf(stderr, "eptest: shard %s of the %d-job catalog selects zero jobs; lower n or broaden -filter\n", spec, len(catalog))
			return 2
		}
	}

	opt := sched.SuiteOptions{Workers: cfg.workers}
	if tr != nil {
		opt.Cache = tr
	}
	var progress *progressRenderer
	switch {
	case cfg.tty:
		progress = newProgressRenderer(stdout, jobs)
		opt.OnEvent = progress.Handle
	case cfg.verbose:
		opt.OnEvent = func(ev sched.Event) {
			switch ev.Kind {
			case sched.EventPlanned:
				fmt.Fprintf(stdout, "[%s] planned %d injection runs\n", ev.Job.Label(), ev.Total)
			case sched.EventDone:
				switch {
				case ev.Err != nil:
					fmt.Fprintf(stdout, "[%s] FAILED: %v\n", ev.Job.Label(), ev.Err)
				case ev.Cached:
					fmt.Fprintf(stdout, "[%s] cached (%d runs replayed)\n", ev.Job.Label(), ev.Total)
				default:
					fmt.Fprintf(stdout, "[%s] done (%d/%d)\n", ev.Job.Label(), ev.Done, ev.Total)
				}
			}
		}
	}
	sr := sched.RunSuite(jobs, opt)
	if progress != nil {
		progress.Close()
	}
	fmt.Fprint(stdout, report.SuiteRun(sr))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Clusters(sched.ClusterSuite(sr)))
	if cfg.matrix {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.Matrix(sr))
	}
	if tr != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.CacheStats(sr))
	}
	if cfg.verbose {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.Dispatch(sr))
	}
	if !spec.IsZero() {
		if err := tr.WriteShard(spec, catalog, indices, sr); err != nil {
			fmt.Fprintf(stderr, "eptest: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "shard %s: wrote %d job(s) to %s\n", spec, len(jobs), dest)
	}
	if len(sr.Failed()) > 0 {
		return 1
	}
	return 0
}

// runMerge recombines the shard artifacts under dir into one suite
// report — byte-identical, up to the trailing merged-shard section, to
// the report an unsharded -all run over the same catalog prints. With
// matrix set (shards produced by -matrix workers), the per-axis rollup
// is rendered in its unsharded position too.
func runMerge(dir string, matrix bool, stdout, stderr io.Writer) int {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	sr, infos, err := st.MergeShards()
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, report.SuiteRun(sr))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.Clusters(sched.ClusterSuite(sr)))
	if matrix {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.Matrix(sr))
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.MergedShards(infos))
	if len(sr.Failed()) > 0 {
		return 1
	}
	return 0
}

// runServeCache serves the store at dir over HTTP until the process is
// terminated. Killing the server at any moment is safe: every store
// write goes through an atomic rename, so readers and a later -merge
// never observe partial files.
func runServeCache(addr, dir string, stdout, stderr io.Writer) int {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: -serve-cache %s: %v\n", addr, err)
		return 2
	}
	fmt.Fprintf(stdout, "eptest: cache server listening on %s (store %s)\n", ln.Addr(), st.Dir())
	if err := http.Serve(ln, store.NewServer(st)); err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 1
	}
	return 0
}
