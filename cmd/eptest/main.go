// Command eptest runs an environment-perturbation fault-injection campaign
// against a named target application and prints the campaign report: the
// injection list, the violations, and the two-dimensional adequacy metric.
//
// Usage:
//
//	eptest -list
//	eptest -campaign turnin [-fixed] [-per-point] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/apps"
	"repro/internal/core/inject"
	"repro/internal/core/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eptest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list available campaigns")
		campaign = fs.String("campaign", "", "campaign to run (see -list)")
		fixed    = fs.Bool("fixed", false, "run against the repaired program variant")
		perPoint = fs.Bool("per-point", false, "print the per-interaction-point breakdown")
		verbose  = fs.Bool("v", false, "print every injection, not only violations")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "available campaigns:")
		for _, s := range apps.Catalog() {
			fmt.Fprintf(stdout, "  %-18s %s\n", s.Name, s.Paper)
		}
		return 0
	}
	if *campaign == "" {
		fmt.Fprintln(stderr, "eptest: -campaign required (or -list)")
		fs.Usage()
		return 2
	}

	spec, err := apps.Lookup(*campaign)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: %v\n", err)
		return 2
	}
	c := spec.Vulnerable()
	if *fixed {
		c = spec.Fixed()
	}
	res, err := inject.Run(c)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: campaign failed: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, report.Campaign(res))
	if *perPoint {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.PerPoint(res))
	}
	if *verbose {
		fmt.Fprintln(stdout, "\nall injections:")
		for _, in := range res.Injections {
			status := "tolerated"
			if !in.Tolerated() {
				status = "VIOLATED"
			}
			fmt.Fprintf(stdout, "  %-28s %-44s %s\n", in.Point, in.FaultID, status)
		}
	}
	if res.Metric().Violations() > 0 {
		return 1
	}
	return 0
}
