package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	for _, want := range []string{"turnin", "lpr", "ntreg-fontclean", "maildrop", "ftpget"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestMissingCampaignFlag(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-campaign required") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestUnknownCampaign(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run([]string{"-campaign", "nope"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown campaign") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBadFlag(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestVulnerableCampaignExitsNonZero(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	code := run([]string{"-campaign", "lpr-create-site", "-per-point", "-v"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (violations found), stderr = %s", code, errb.String())
	}
	for _, want := range []string{
		"security violations         : 4",
		"lpr:create",
		"VIOLATED",
		"interaction point (site)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFixedCampaignExitsZero(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	code := run([]string{"-campaign", "lpr-create-site", "-fixed"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0, stderr = %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fault coverage              : 1.000") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestParallelCampaignOutputMatchesSequential(t *testing.T) {
	t.Parallel()
	var seq, par, errb bytes.Buffer
	if code := run([]string{"-campaign", "turnin", "-per-point", "-v"}, &seq, &errb); code != 1 {
		t.Fatalf("sequential exit = %d, stderr = %s", code, errb.String())
	}
	if code := run([]string{"-campaign", "turnin", "-per-point", "-v", "-j", "8"}, &par, &errb); code != 1 {
		t.Fatalf("parallel exit = %d, stderr = %s", code, errb.String())
	}
	if seq.String() != par.String() {
		t.Errorf("-j 8 output differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", seq.String(), par.String())
	}
}

func TestAllRunsSuiteWithClusters(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "8"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	for _, want := range []string{
		"turnin/vulnerable", "turnin/fixed", "lpr/vulnerable",
		"clustered findings:", "finding(s)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("suite output missing %q", want)
		}
	}
	if strings.Contains(out.String(), "FAILED") {
		t.Errorf("suite reported failures:\n%s", out.String())
	}
}

func TestAllVerboseStreamsProgress(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run([]string{"-all", "-j", "4", "-v"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	for _, want := range []string{"planned", "injection runs", "done ("} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose suite output missing %q", want)
		}
	}
}

func TestTurninCampaignNumbers(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	code := run([]string{"-campaign", "turnin"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{
		"faults injected (n)         : 41",
		"security violations         : 9",
		"points perturbed            : 8",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
