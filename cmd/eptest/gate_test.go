package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchRecord(mod func(*benchStats)) benchStats {
	bs := benchStats{
		Schema:     benchSchemaVersion,
		Catalog:    "base",
		Workers:    4,
		Jobs:       20,
		RunsTotal:  273,
		RunsExec:   273,
		WallMillis: 46.2,
		RunsPerSec: 5900,
		// Optional fields: provenance and allocation rate, present in
		// records written since PR 8.
		GOOS:         "linux",
		GOARCH:       "amd64",
		CPUs:         4,
		GoVersion:    "go1.24.0",
		AllocsPerRun: 300,
	}
	if mod != nil {
		mod(&bs)
	}
	return bs
}

func TestCompareBench(t *testing.T) {
	t.Parallel()
	base := benchRecord(nil)
	cases := []struct {
		name    string
		current benchStats
		tol     float64
		wantErr string
	}{
		{"equal throughput passes", benchRecord(nil), 0.4, ""},
		{"faster run passes", benchRecord(func(b *benchStats) { b.RunsPerSec = 9000 }), 0.4, ""},
		{"drop inside tolerance passes", benchRecord(func(b *benchStats) { b.RunsPerSec = 3600 }), 0.4, ""},
		{"drop beyond tolerance fails", benchRecord(func(b *benchStats) { b.RunsPerSec = 2000 }), 0.4, "throughput regression"},
		{"tight tolerance catches small drop", benchRecord(func(b *benchStats) { b.RunsPerSec = 5000 }), 0.05, "throughput regression"},
		{"catalog mismatch fails", benchRecord(func(b *benchStats) { b.Catalog = "matrix" }), 0.4, "workloads differ"},
		{"filter mismatch fails", benchRecord(func(b *benchStats) { b.Filter = "lpr*" }), 0.4, "workloads differ"},
		{"warm run fails", benchRecord(func(b *benchStats) { b.RunsExec = 0 }), 0.4, "zero runs"},
		{"bad tolerance fails", benchRecord(nil), 1.5, "out of range"},
		{"alloc bloat beyond tolerance fails", benchRecord(func(b *benchStats) { b.AllocsPerRun = 900 }), 0.4, "allocation regression"},
		{"alloc growth inside tolerance passes", benchRecord(func(b *benchStats) { b.AllocsPerRun = 350 }), 0.4, ""},
		{"record without allocs passes", benchRecord(func(b *benchStats) { b.AllocsPerRun = 0 }), 0.4, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := compareBench(base, tc.current, tc.tol)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestHostMismatch(t *testing.T) {
	t.Parallel()
	base := benchRecord(nil)
	if mm := hostMismatch(base, benchRecord(nil)); mm != "" {
		t.Errorf("identical hosts flagged: %q", mm)
	}
	legacy := benchRecord(func(b *benchStats) { b.GOOS, b.GOARCH, b.CPUs, b.GoVersion = "", "", 0, "" })
	if mm := hostMismatch(base, legacy); mm != "" {
		t.Errorf("legacy record without provenance flagged: %q", mm)
	}
	if mm := hostMismatch(legacy, base); mm != "" {
		t.Errorf("legacy baseline flagged: %q", mm)
	}
	other := benchRecord(func(b *benchStats) { b.GOOS = "darwin"; b.CPUs = 10; b.GoVersion = "go1.25.0" })
	mm := hostMismatch(base, other)
	for _, want := range []string{"linux/amd64 vs darwin/amd64", "4 vs 10 cpus", "go1.24.0 vs go1.25.0"} {
		if !strings.Contains(mm, want) {
			t.Errorf("mismatch %q missing %q", mm, want)
		}
	}
}

func writeBenchFile(t *testing.T, dir, name string, bs benchStats) string {
	t.Helper()
	b, err := json.MarshalIndent(&bs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchGateCLI drives the -bench-gate mode through run(): a healthy
// fresh record passes, a synthetic slowdown fails with exit 1, and
// malformed inputs are usage errors.
func TestBenchGateCLI(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	baseline := writeBenchFile(t, dir, "baseline.json", benchRecord(nil))
	healthy := writeBenchFile(t, dir, "healthy.json", benchRecord(func(b *benchStats) { b.RunsPerSec = 6100 }))
	slow := writeBenchFile(t, dir, "slow.json", benchRecord(func(b *benchStats) { b.RunsPerSec = 1200 }))
	badSchema := writeBenchFile(t, dir, "bad.json", benchRecord(func(b *benchStats) { b.Schema = "eptest-bench/999" }))

	var out, errb bytes.Buffer
	if code := run([]string{"-bench-gate", baseline, "-bench-json", healthy}, &out, &errb); code != 0 {
		t.Fatalf("healthy gate exit = %d, stderr = %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "bench gate: ok") {
		t.Fatalf("missing verdict in output:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-bench-gate", baseline, "-bench-json", slow}, &out, &errb); code != 1 {
		t.Fatalf("synthetic slowdown exit = %d, want 1; stderr = %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "throughput regression") {
		t.Fatalf("missing regression diagnosis: %s", errb.String())
	}

	// A record from different hardware still gates, but the verdict is
	// downgraded to advisory via a stderr warning.
	crossHost := writeBenchFile(t, dir, "crosshost.json", benchRecord(func(b *benchStats) {
		b.RunsPerSec = 6100
		b.GOOS = "darwin"
		b.CPUs = 10
	}))
	out.Reset()
	errb.Reset()
	if code := run([]string{"-bench-gate", baseline, "-bench-json", crossHost}, &out, &errb); code != 0 {
		t.Fatalf("cross-host gate exit = %d, stderr = %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "different hosts") {
		t.Fatalf("missing cross-host warning: %s", errb.String())
	}

	// A looser explicit tolerance lets the same slow record through.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-bench-gate", baseline, "-bench-json", slow, "-gate-tolerance", "0.9"}, &out, &errb); code != 0 {
		t.Fatalf("tolerant gate exit = %d, stderr = %s", code, errb.String())
	}

	for _, args := range [][]string{
		{"-bench-gate", baseline},                                                // no fresh record
		{"-bench-gate", baseline, "-bench-json", badSchema},                      // schema drift
		{"-bench-gate", filepath.Join(dir, "nope.json"), "-bench-json", healthy}, // missing baseline
		{"-bench-gate", baseline, "-bench-json", healthy, "-all"},                // mode conflict
		{"-gate-tolerance", "0.2"},                                               // tolerance without gate
	} {
		out.Reset()
		errb.Reset()
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2; stderr = %s", args, code, errb.String())
		}
	}
}
