package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core/coord"
	"repro/internal/core/obs"
	"repro/internal/core/sched"
)

// benchStats is the machine-readable performance record `-bench-json`
// emits for one suite run — the unit the BENCH_*.json perf trajectory
// accumulates across PRs and CI runs. Throughput is measured over the
// runs actually executed; replayed campaigns contribute to cache_hits
// instead, so a warm run reports its true (tiny) execution cost.
type benchStats struct {
	Schema string `json:"schema"`
	// Catalog is "base" or "matrix"; Filter/Shard narrow it.
	Catalog     string `json:"catalog"`
	Filter      string `json:"filter,omitempty"`
	Shard       string `json:"shard,omitempty"`
	Coordinated bool   `json:"coordinated,omitempty"`
	Workers     int    `json:"workers"`
	// Jobs is the campaign count this process ran; CatalogJobs the
	// full catalog size (they differ under -shard and -coord-url).
	Jobs        int     `json:"jobs"`
	CatalogJobs int     `json:"catalog_jobs"`
	RunsTotal   int     `json:"runs_total"`
	RunsExec    int     `json:"runs_executed"`
	WallMillis  float64 `json:"wall_ms"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	CacheHits   int     `json:"cache_hits"`
	SourceHits  int     `json:"source_hits"`
	Plans       int     `json:"plans"`
	Steals      int     `json:"steals"`
	// Coordinator-mode extras: claims this worker made and leases it
	// lost to expiry while executing.
	LostLeases int `json:"lost_leases,omitempty"`
	// Host provenance — optional fields absent from records written by
	// older binaries, so adding them is not a schema bump. Runs/sec is
	// only comparable on like hardware; the bench gate warns (never
	// fails) when two records disagree on any of these.
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	CPUs      int    `json:"cpus,omitempty"`
	GoVersion string `json:"go,omitempty"`
	// AllocsPerRun is the process-wide heap-allocation count over the
	// suite (runtime Mallocs delta) divided by runs_executed. Unlike
	// wall time it is nearly deterministic for a fixed workload, which
	// makes it the gate's low-noise regression signal.
	AllocsPerRun float64 `json:"allocs_per_run,omitempty"`
	// Metrics folds the worker's full metrics registry into the record
	// (series-signature keys, e.g. `eptest_cache_requests_total{result="hit",tier="source"}`),
	// so the perf trajectory carries cache-tier and steal detail without
	// a schema bump per metric.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchSchemaVersion identifies the bench-json record layout.
const benchSchemaVersion = "eptest-bench/1"

// writeBenchJSON renders the run's benchStats to cfg.benchJSON. allocs
// is the suite's heap-allocation count (Mallocs delta around the run).
func writeBenchJSON(cfg suiteConfig, sr *sched.SuiteResult, catalogJobs int, wall time.Duration, allocs uint64, source *coord.Source, reg *obs.Registry) error {
	bs := benchStats{
		Schema:      benchSchemaVersion,
		Catalog:     "base",
		Filter:      cfg.filter,
		Shard:       cfg.shard,
		Coordinated: cfg.coordURL != "",
		Workers:     cfg.workers,
		Jobs:        len(sr.Campaigns),
		CatalogJobs: catalogJobs,
		RunsExec:    sr.Dispatch.Runs,
		WallMillis:  float64(wall.Microseconds()) / 1000,
		Plans:       sr.Dispatch.Plans,
		Steals:      sr.Dispatch.Steals,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GoVersion:   runtime.Version(),
	}
	if cfg.matrix {
		bs.Catalog = "matrix"
	}
	for _, c := range sr.Campaigns {
		if c.Result != nil {
			bs.RunsTotal += len(c.Result.Injections)
		}
		if c.Cached {
			bs.CacheHits++
		}
		if c.CachedSource {
			bs.SourceHits++
		}
	}
	if secs := wall.Seconds(); secs > 0 {
		bs.RunsPerSec = float64(bs.RunsExec) / secs
	}
	if bs.RunsExec > 0 && allocs > 0 {
		bs.AllocsPerRun = float64(allocs) / float64(bs.RunsExec)
	}
	if source != nil {
		bs.LostLeases = source.LostLeases()
	}
	if reg != nil {
		bs.Metrics = reg.Flat()
	}
	b, err := json.MarshalIndent(&bs, "", "  ")
	if err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	return os.WriteFile(cfg.benchJSON, append(b, '\n'), 0o644)
}
