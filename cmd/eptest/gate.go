package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// defaultGateTolerance is the fractional throughput drop -bench-gate
// allows before failing: CI runners are noisy, so the gate is tuned to
// catch structural regressions (a lost snapshot seam, an accidental
// O(n²) in the dispatcher), not single-digit-percent jitter.
const defaultGateTolerance = 0.4

// loadBenchStats reads and validates one -bench-json record.
func loadBenchStats(path string) (benchStats, error) {
	var bs benchStats
	b, err := os.ReadFile(path)
	if err != nil {
		return bs, err
	}
	if err := json.Unmarshal(b, &bs); err != nil {
		return bs, fmt.Errorf("%s: %w", path, err)
	}
	if bs.Schema != benchSchemaVersion {
		return bs, fmt.Errorf("%s: schema %q, want %q", path, bs.Schema, benchSchemaVersion)
	}
	if bs.RunsPerSec <= 0 {
		return bs, fmt.Errorf("%s: runs_per_sec %v is not a throughput", path, bs.RunsPerSec)
	}
	return bs, nil
}

// compareBench judges a fresh run against the committed baseline. The
// records must describe the same workload shape (catalog, filter,
// shard, coordination mode) — comparing a matrix run against a base
// baseline would pass or fail on workload size, not speed. A fresh
// throughput below (1-tolerance)×baseline is a regression.
func compareBench(baseline, current benchStats, tolerance float64) error {
	if tolerance < 0 || tolerance >= 1 {
		return fmt.Errorf("tolerance %v out of range [0,1)", tolerance)
	}
	if baseline.Catalog != current.Catalog || baseline.Filter != current.Filter ||
		baseline.Shard != current.Shard || baseline.Coordinated != current.Coordinated {
		return fmt.Errorf("workloads differ: baseline is catalog=%q filter=%q shard=%q coordinated=%v, fresh run is catalog=%q filter=%q shard=%q coordinated=%v",
			baseline.Catalog, baseline.Filter, baseline.Shard, baseline.Coordinated,
			current.Catalog, current.Filter, current.Shard, current.Coordinated)
	}
	if current.RunsExec == 0 {
		return fmt.Errorf("fresh run executed zero runs (all cache hits?); the gate needs a cold run")
	}
	floor := baseline.RunsPerSec * (1 - tolerance)
	if current.RunsPerSec < floor {
		return fmt.Errorf("throughput regression: %.0f runs/sec is %.1f%% of the %.0f runs/sec baseline, below the %.0f floor (tolerance %.0f%%)",
			current.RunsPerSec, 100*current.RunsPerSec/baseline.RunsPerSec,
			baseline.RunsPerSec, floor, 100*tolerance)
	}
	if baseline.AllocsPerRun > 0 && current.AllocsPerRun > 0 {
		ceil := baseline.AllocsPerRun * (1 + tolerance)
		if current.AllocsPerRun > ceil {
			return fmt.Errorf("allocation regression: %.0f allocs/run vs the %.0f baseline, above the %.0f ceiling (tolerance %.0f%%)",
				current.AllocsPerRun, baseline.AllocsPerRun, ceil, 100*tolerance)
		}
	}
	return nil
}

// hostMismatch describes how two bench records' host provenance
// differs, or "" when they match or either record predates the
// provenance fields. A mismatch downgrades the gate's verdict to
// advisory — runs/sec across different hardware is not a regression
// signal — but never fails it.
func hostMismatch(baseline, current benchStats) string {
	if baseline.GOOS == "" || current.GOOS == "" {
		return "" // at least one record predates host provenance
	}
	var diffs []string
	if baseline.GOOS != current.GOOS || baseline.GOARCH != current.GOARCH {
		diffs = append(diffs, fmt.Sprintf("platform %s/%s vs %s/%s", baseline.GOOS, baseline.GOARCH, current.GOOS, current.GOARCH))
	}
	if baseline.CPUs != current.CPUs {
		diffs = append(diffs, fmt.Sprintf("%d vs %d cpus", baseline.CPUs, current.CPUs))
	}
	if baseline.GoVersion != current.GoVersion {
		diffs = append(diffs, fmt.Sprintf("%s vs %s", baseline.GoVersion, current.GoVersion))
	}
	return strings.Join(diffs, ", ")
}

// runBenchGate is the -bench-gate mode: read the committed baseline and
// the fresh run's -bench-json record, print the comparison, and exit
// non-zero on a regression.
func runBenchGate(baselinePath, currentPath string, tolerance float64, stdout, stderr io.Writer) int {
	baseline, err := loadBenchStats(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: -bench-gate baseline: %v\n", err)
		return 2
	}
	current, err := loadBenchStats(currentPath)
	if err != nil {
		fmt.Fprintf(stderr, "eptest: -bench-gate fresh run: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "bench gate: %s (%s catalog, %d runs)\n", baselinePath, baseline.Catalog, baseline.RunsTotal)
	fmt.Fprintf(stdout, "  baseline   %10.0f runs/sec  (%.1f ms wall, %d workers)\n", baseline.RunsPerSec, baseline.WallMillis, baseline.Workers)
	fmt.Fprintf(stdout, "  fresh run  %10.0f runs/sec  (%.1f ms wall, %d workers)\n", current.RunsPerSec, current.WallMillis, current.Workers)
	fmt.Fprintf(stdout, "  ratio      %10.2fx        (gate floor %.2fx)\n", current.RunsPerSec/baseline.RunsPerSec, 1-tolerance)
	if baseline.AllocsPerRun > 0 && current.AllocsPerRun > 0 {
		fmt.Fprintf(stdout, "  allocs/run %10.0f        (baseline %.0f, ceiling %.0f)\n",
			current.AllocsPerRun, baseline.AllocsPerRun, baseline.AllocsPerRun*(1+tolerance))
	}
	if mm := hostMismatch(baseline, current); mm != "" {
		fmt.Fprintf(stderr, "eptest: bench gate warning: records are from different hosts (%s); treat the comparison as advisory\n", mm)
	}
	if err := compareBench(baseline, current, tolerance); err != nil {
		fmt.Fprintf(stderr, "eptest: bench gate FAILED: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "bench gate: ok")
	return 0
}
