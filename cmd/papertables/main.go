// Command papertables regenerates every table and figure of the paper in
// one run and prints a paper-vs-measured summary — the data source for
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/apps/lpr"
	"repro/internal/apps/ntreg"
	"repro/internal/apps/turnin"
	"repro/internal/baseline/ava"
	"repro/internal/baseline/fuzz"
	"repro/internal/baseline/tocttou"
	"repro/internal/core/findings"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/core/report"
	"repro/internal/vulndb"
)

var findingsPath = flag.String("findings", "",
	"classify a measured findings file (written by `eptest -all -findings FILE`) against the paper's taxonomy")

func main() {
	os.Exit(run())
}

func run() int {
	flag.Parse()
	ok := true
	check := func(name string, got, want int) {
		status := "ok"
		if got != want {
			status = "MISMATCH"
			ok = false
		}
		fmt.Printf("  %-52s paper=%-5d measured=%-5d %s\n", name, want, got, status)
	}

	fmt.Println("== Tables 1-4: vulnerability database classification (Section 2.4) ==")
	s := vulndb.Load().Classify()
	fmt.Println(vulndb.Table1(s))
	fmt.Println(vulndb.Table2(s))
	fmt.Println(vulndb.Table3(s))
	fmt.Println(vulndb.Table4(s))
	check("database entries", s.Total, 195)
	check("classified entries", s.Classified, 142)
	check("indirect faults", s.Indirect, 81)
	check("direct faults", s.Direct, 48)
	check("others", s.Others, 13)

	if *findingsPath != "" {
		rep, err := findings.ReadFile(*findingsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("\n== Measured findings: %s ==\n", *findingsPath)
		byTax, byRule := findingsTables(rep)
		fmt.Println(byTax)
		fmt.Println(byRule)
	}

	fmt.Println("\n== Tables 5-6: fault catalogs ==")
	fmt.Println(report.Table5())
	fmt.Println(report.Table6())

	fmt.Println("== Section 3.4: lpr create-site walk-through ==")
	lprRes, err := inject.Run(lpr.CreateSiteCampaign(lpr.Vulnerable))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(report.Campaign(lprRes))
	check("applicable attributes at create", lprRes.Metric().FaultsInjected, 4)
	check("violations at create", lprRes.Metric().Violations(), 4)

	fmt.Println("\n== Section 4.1: turnin ==")
	tRes, err := inject.Run(turnin.Campaign(turnin.Vulnerable))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(report.Campaign(tRes))
	fmt.Println()
	fmt.Print(report.PerPoint(tRes))
	check("interaction places", tRes.Metric().PointsPerturbed, 8)
	check("perturbations", tRes.Metric().FaultsInjected, 41)
	check("violations", tRes.Metric().Violations(), 9)

	fmt.Println("\n== Section 4.2: Windows NT registry ==")
	survey, err := ntreg.RunSurvey(false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	check("unprotected keys", len(survey.UnprotectedKeys), 29)
	check("exploited keys", len(survey.ExploitedKeys), 9)
	check("suspected keys", len(survey.SuspectedKeys), 20)
	fmt.Println("  exploited:")
	for _, k := range survey.ExploitedKeys {
		fmt.Printf("    %s\n", k)
	}

	fmt.Println("\n== Section 5 comparisons ==")
	results, crashed := fuzz.RunSuite(fuzz.UtilitySuite(), fuzz.Options{Trials: 40, Seed: 1})
	fmt.Printf("  fuzz: %d of %d utilities crash under random input (%.0f%%; Miller reports 25-33%%)\n",
		crashed, len(results), 100*float64(crashed)/float64(len(results)))

	c := turnin.Campaign(turnin.Vulnerable)
	avaRes := ava.Run("turnin", c.World, c.Policy, ava.Options{Trials: 41, Seed: 4})
	// Count semantic violations through the canonical findings records
	// rather than re-walking clusters: the same path the export file and
	// the fleet surfaces use.
	eaiSem := 0
	for _, f := range findings.FromResult("turnin", "vulnerable", tRes).Findings {
		if f.Rule == policy.KindConfidentiality.String() || f.Rule == policy.KindIntegrity.String() {
			eaiSem += len(f.Traces)
		}
	}
	avaSem := avaRes.ViolationKinds[policy.KindConfidentiality] +
		avaRes.ViolationKinds[policy.KindIntegrity]
	fmt.Printf("  ava : %d semantic violations in 41 random internal-state runs (EAI finds %d in 41)\n",
		avaSem, eaiSem)

	kt, lt := turnin.World(turnin.Vulnerable)()
	pt := kt.NewProc(lt.Cred, lt.Env, lt.Cwd, lt.Args...)
	if _, crash := kt.Run(pt, lt.Prog); crash != nil {
		fmt.Fprintln(os.Stderr, crash)
		return 1
	}
	windows := tocttou.AnalyzeDirs(kt.Bus.Trace())
	fmt.Printf("  tocttou: %d check-use windows flagged in turnin; 0 in lpr (checkless creat is its blind spot)\n",
		len(windows))

	if !ok {
		fmt.Println("\nRESULT: MISMATCH — at least one measured value differs from the paper")
		return 1
	}
	fmt.Println("\nRESULT: all measured values match the paper")
	return 0
}

// findingsTables folds a measured findings file into the paper's
// count-table shape: finding records by taxonomy slug, and violating
// traces by policy rule.
func findingsTables(rep *findings.Report) (byTax, byRule report.CountTable) {
	byTax = report.CountTable{
		Title:  "Findings by vulnerability taxonomy",
		Counts: map[string]int{},
	}
	byRule = report.CountTable{
		Title:  "Violating traces by policy rule",
		Counts: map[string]int{},
	}
	for i := range rep.Findings {
		f := &rep.Findings[i]
		if byTax.Counts[f.Taxonomy.Slug] == 0 {
			byTax.Categories = append(byTax.Categories, f.Taxonomy.Slug)
		}
		byTax.Counts[f.Taxonomy.Slug]++
		if byRule.Counts[f.Rule] == 0 {
			byRule.Categories = append(byRule.Categories, f.Rule)
		}
		byRule.Counts[f.Rule] += len(f.Traces)
	}
	sort.Strings(byTax.Categories)
	sort.Strings(byRule.Categories)
	return byTax, byRule
}
