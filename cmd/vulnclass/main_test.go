package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTablesOutput(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	for _, want := range []string{
		"database: 195 entries; 26 insufficient info, 22 design errors, 5 configuration errors excluded",
		"Table 1: high-level classification (total 142)",
		"Table 2: indirect environment faults that cause security violations (total 81)",
		"Table 3: direct environment faults that cause security violations (total 48)",
		"Table 4: file system environment faults (total 42)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestEntriesOutput(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run([]string{"-entries"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := strings.Count(out.String(), "\n")
	if lines != 195 {
		t.Errorf("entry lines = %d, want 195", lines)
	}
	for _, want := range []string{
		"VDB-UI-001",
		"indirect via user-input",
		"direct on file-system/symbolic-link",
		"excluded: design-error",
		"others (environment-independent)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("entries missing %q", want)
		}
	}
}

func TestBadFlag(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestTruncate(t *testing.T) {
	t.Parallel()
	if got := truncate("short", 40); got != "short" {
		t.Errorf("truncate = %q", got)
	}
	long := strings.Repeat("x", 60)
	got := truncate(long, 40)
	if len(got) != 40 || !strings.HasSuffix(got, "...") {
		t.Errorf("truncate = %q (len %d)", got, len(got))
	}
}
