// Command vulnclass classifies the 195-entry vulnerability database under
// the EAI fault model and prints the paper's Tables 1-4 (Section 2.4).
//
// Usage:
//
//	vulnclass            # the four tables
//	vulnclass -entries   # every entry with its classification
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/vulndb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vulnclass", flag.ContinueOnError)
	fs.SetOutput(stderr)
	entries := fs.Bool("entries", false, "list every entry with its classification")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	db := vulndb.Load()
	if *entries {
		for _, e := range db.Entries {
			c := vulndb.Classify(e)
			fmt.Fprintf(stdout, "%-11s %-14s %-40s %s\n", e.ID, e.Program, truncate(e.Title, 40), c.Verdict())
		}
		return 0
	}

	s := db.Classify()
	fmt.Fprintf(stdout, "database: %d entries; %d insufficient info, %d design errors, %d configuration errors excluded\n\n",
		s.Total, s.InsufficientInfo, s.DesignErrors, s.ConfigErrors)
	fmt.Fprintln(stdout, vulndb.Table1(s))
	fmt.Fprintln(stdout, vulndb.Table2(s))
	fmt.Fprintln(stdout, vulndb.Table3(s))
	fmt.Fprintln(stdout, vulndb.Table4(s))
	return 0
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
