package repro_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/lpr"
	"repro/internal/apps/ntreg"
	"repro/internal/apps/turnin"
	"repro/internal/baseline/ava"
	"repro/internal/baseline/fuzz"
	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/vulndb"
)

// TestPaperNumbers is the repository-level acceptance test: every count
// the paper publishes, regenerated in one sweep. The per-package tests
// cover the same ground in more detail; this one exists so a single failed
// assumption anywhere in the stack is visible at the top.
func TestPaperNumbers(t *testing.T) {
	t.Parallel()
	t.Run("tables-1-to-4", func(t *testing.T) {
		t.Parallel()
		s := vulndb.Load().Classify()
		checks := []struct {
			name      string
			got, want int
		}{
			{"total entries", s.Total, 195},
			{"classified", s.Classified, 142},
			{"indirect", s.Indirect, 81},
			{"direct", s.Direct, 48},
			{"others", s.Others, 13},
			{"indirect/user", s.IndirectByOrigin[eai.OriginUserInput], 51},
			{"indirect/env", s.IndirectByOrigin[eai.OriginEnvVar], 17},
			{"indirect/file", s.IndirectByOrigin[eai.OriginFileInput], 5},
			{"indirect/network", s.IndirectByOrigin[eai.OriginNetworkInput], 8},
			{"indirect/process", s.IndirectByOrigin[eai.OriginProcessInput], 0},
			{"direct/fs", s.DirectByEntity[eai.EntityFileSystem], 42},
			{"direct/network", s.DirectByEntity[eai.EntityNetwork], 5},
			{"direct/process", s.DirectByEntity[eai.EntityProcess], 1},
			{"fs/existence", s.FSByAttr[eai.AttrExistence], 20},
			{"fs/symlink", s.FSByAttr[eai.AttrSymlink], 6},
			{"fs/permission", s.FSByAttr[eai.AttrPermission], 6},
			{"fs/ownership", s.FSByAttr[eai.AttrOwnership], 3},
			{"fs/invariance", s.FSByAttr[eai.AttrContentInvariance], 6},
			{"fs/workdir", s.FSByAttr[eai.AttrWorkingDirectory], 1},
		}
		for _, c := range checks {
			if c.got != c.want {
				t.Errorf("%s = %d, paper reports %d", c.name, c.got, c.want)
			}
		}
	})

	t.Run("section-3.4-lpr", func(t *testing.T) {
		t.Parallel()
		res, err := inject.Run(lpr.CreateSiteCampaign(lpr.Vulnerable))
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metric()
		if m.FaultsInjected != 4 || m.Violations() != 4 {
			t.Errorf("lpr = %d/%d, paper reports 4/4", m.FaultsInjected, m.Violations())
		}
	})

	t.Run("section-4.1-turnin", func(t *testing.T) {
		t.Parallel()
		res, err := inject.Run(turnin.Campaign(turnin.Vulnerable))
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metric()
		if m.PointsPerturbed != 8 || m.FaultsInjected != 41 || m.Violations() != 9 {
			t.Errorf("turnin = %d/%d/%d, paper reports 8/41/9",
				m.PointsPerturbed, m.FaultsInjected, m.Violations())
		}
	})

	t.Run("section-4.2-registry", func(t *testing.T) {
		t.Parallel()
		s, err := ntreg.RunSurvey(false)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.UnprotectedKeys) != 29 || len(s.ExploitedKeys) != 9 || len(s.SuspectedKeys) != 20 {
			t.Errorf("registry = %d/%d/%d, paper reports 29/9/20",
				len(s.UnprotectedKeys), len(s.ExploitedKeys), len(s.SuspectedKeys))
		}
	})

	t.Run("section-5-fuzz", func(t *testing.T) {
		t.Parallel()
		results, crashed := fuzz.RunSuite(fuzz.UtilitySuite(), fuzz.Options{Trials: 40, Seed: 1})
		rate := float64(crashed) / float64(len(results))
		if rate < 0.25 || rate > 0.40 {
			t.Errorf("fuzz crash rate = %.2f, outside the paper's 25-40%% band", rate)
		}
	})

	t.Run("section-5-ava-complementarity", func(t *testing.T) {
		t.Parallel()
		c := lpr.CreateSiteCampaign(lpr.Vulnerable)
		avaRes := ava.Run("lpr", c.World, c.Policy, ava.Options{Trials: 100, Seed: 3})
		if avaRes.ViolationKinds[policy.KindIntegrity] != 0 {
			t.Error("AVA simulated an environment-only attack; complementarity claim broken")
		}
	})
}

// TestFaultRemovalMonotonicity: fixing an app never lowers fault coverage
// anywhere in the catalog — the Section 3.2 assumption that "faults found
// during testing are removed".
func TestFaultRemovalMonotonicity(t *testing.T) {
	t.Parallel()
	for _, spec := range apps.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			vuln, err := inject.Run(spec.Vulnerable())
			if err != nil {
				t.Fatal(err)
			}
			fixed, err := inject.Run(spec.Fixed())
			if err != nil {
				t.Fatal(err)
			}
			if fixed.Metric().FaultCoverage() < vuln.Metric().FaultCoverage() {
				t.Errorf("fixing lowered fault coverage: %.3f -> %.3f",
					vuln.Metric().FaultCoverage(), fixed.Metric().FaultCoverage())
			}
			if fixed.Metric().FaultCoverage() != 1 {
				t.Errorf("fixed variant fault coverage = %.3f, want 1.0",
					fixed.Metric().FaultCoverage())
			}
		})
	}
}

// TestDeterministicCampaigns: the whole pipeline is replayable — two runs
// of any campaign agree injection by injection.
func TestDeterministicCampaigns(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"turnin", "lpr", "ntreg-fontclean", "ftpget"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := apps.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := inject.Run(spec.Vulnerable())
			if err != nil {
				t.Fatal(err)
			}
			b, err := inject.Run(spec.Vulnerable())
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Injections) != len(b.Injections) {
				t.Fatalf("injection counts differ: %d vs %d", len(a.Injections), len(b.Injections))
			}
			for i := range a.Injections {
				ai, bi := a.Injections[i], b.Injections[i]
				if ai.FaultID != bi.FaultID || ai.Tolerated() != bi.Tolerated() ||
					ai.CrashMsg != bi.CrashMsg {
					t.Errorf("injection %d differs: %+v vs %+v", i, ai, bi)
				}
			}
		})
	}
}
